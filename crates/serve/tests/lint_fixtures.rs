//! Pins the lint diagnostics of the three DAC'20 case-study models.
//!
//! Each fixture line in `fixtures/lint_*.json` was produced by
//! `biocheck_client --lint MODEL` against a live daemon; this test
//! recomputes the same line on a direct in-process [`Session`] and
//! asserts byte equality. CI additionally diffs the daemon's output
//! against the same files, so fixture == direct == daemon, pairwise.
//!
//! A diff here means the analyzer's verdict on a real model changed —
//! sometimes intentional (new check, sharper enclosure), never silent:
//! regenerate with `biocheck_client --lint MODEL > fixtures/lint_MODEL.json`
//! and review the diagnostic delta in the PR.

use biocheck_engine::Session;
use biocheck_serve::wire::{report_to_json, QuerySpec};
use biocheck_serve::{case_study_source, pinned_lint_json, CASE_STUDIES};

fn direct_lint_line(name: &str) -> String {
    let source = case_study_source(name).expect("known case study");
    let (mut cx, sys) = source.build().expect("case-study source builds");
    let query = QuerySpec::Lint { ranges: vec![] }
        .build(&mut cx)
        .expect("lint spec builds");
    let session = Session::from_parts(cx, sys);
    let report = session.query(query).seed(0).run().expect("lint runs");
    let json = report_to_json(&report);
    let value = json.get("value").cloned().expect("report has value");
    pinned_lint_json(name, value, report.fingerprint()).render()
}

#[test]
fn case_study_lint_matches_pinned_fixtures() {
    for (name, fixture) in [
        (
            "prostate",
            include_str!("../../../fixtures/lint_prostate.json"),
        ),
        (
            "cardiac",
            include_str!("../../../fixtures/lint_cardiac.json"),
        ),
        (
            "radiation",
            include_str!("../../../fixtures/lint_radiation.json"),
        ),
    ] {
        assert_eq!(
            direct_lint_line(name),
            fixture.trim_end(),
            "lint diagnostics for case study `{name}` diverged from \
             fixtures/lint_{name}.json — regenerate and review the delta"
        );
    }
}

#[test]
fn fixture_list_covers_every_case_study() {
    assert_eq!(CASE_STUDIES, ["prostate", "cardiac", "radiation"]);
    for name in CASE_STUDIES {
        assert!(case_study_source(name).is_some(), "{name} must resolve");
    }
    assert!(case_study_source("nope").is_none());
}

#[test]
fn case_study_diagnostics_have_expected_shape() {
    // The pinned content, asserted structurally (independent of JSON
    // rendering): prostate flags its two unused synthesis thresholds,
    // cardiac its substituted stimulus parameter, radiation the damage
    // accumulator that no mode-0 derivative feeds back on. None of the
    // case studies has an Error-severity finding — they are servable.
    let expect = [
        ("prostate", vec![("L102", "r0"), ("L102", "r1")]),
        ("cardiac", vec![("L102", "I_stim")]),
        ("radiation", vec![("L101", "dmg")]),
    ];
    for (name, expected) in expect {
        let source = case_study_source(name).unwrap();
        let (mut cx, sys) = source.build().unwrap();
        let query = QuerySpec::Lint { ranges: vec![] }.build(&mut cx).unwrap();
        let session = Session::from_parts(cx, sys);
        let report = session.query(query).seed(0).run().unwrap();
        let biocheck_engine::Value::Lint(diags) = &report.value else {
            panic!("lint must return Value::Lint");
        };
        let got: Vec<(String, String)> = diags
            .iter()
            .map(|d| (d.code.clone(), d.site.clone()))
            .collect();
        assert_eq!(got.len(), expected.len(), "{name}: {got:?}");
        for ((code, site), (want_code, want_frag)) in got.iter().zip(&expected) {
            assert_eq!(code, want_code, "{name}");
            assert!(site.contains(want_frag), "{name}: site {site:?}");
        }
        assert!(
            diags
                .iter()
                .all(|d| d.severity != biocheck_engine::Severity::Error),
            "{name} must stay servable (no Error diagnostics)"
        );
    }
}
