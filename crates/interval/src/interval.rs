//! The [`Interval`] type and its core (rational) arithmetic.

use crate::round::{next_down, next_up};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A closed real interval `[lo, hi]`, possibly empty or unbounded.
///
/// Invariants: either the interval is empty (both endpoints are NaN) or
/// `lo <= hi`, `lo < +inf`, `hi > -inf`. All arithmetic is *enclosure
/// sound*: the result interval contains every real obtainable by applying
/// the exact operation to members of the operands.
///
/// # Examples
///
/// ```
/// use biocheck_interval::Interval;
///
/// let a = Interval::new(-1.0, 2.0);
/// assert!(a.contains(0.0));
/// assert_eq!(a.mid(), 0.5);
/// let sq = a.sqr();
/// assert!(sq.contains(4.0) && sq.contains(0.0) && !sq.contains(-0.1));
/// ```
#[derive(Copy, Clone)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The empty interval.
    pub const EMPTY: Interval = Interval {
        lo: f64::NAN,
        hi: f64::NAN,
    };

    /// The whole real line `[-inf, +inf]`.
    pub const ENTIRE: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// The exact singleton `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// The exact singleton `[1, 1]`.
    pub const ONE: Interval = Interval { lo: 1.0, hi: 1.0 };

    /// A sound enclosure of π.
    // The literals are the nearest f64 neighbors bracketing the true
    // value — intentionally not `f64::consts::*`, which is a single
    // rounded point, not an enclosure.
    #[allow(clippy::approx_constant)]
    pub const PI: Interval = Interval {
        lo: 3.141592653589793,
        hi: 3.1415926535897936,
    };

    /// A sound enclosure of 2π.
    // The literals are the nearest f64 neighbors bracketing the true
    // value — intentionally not `f64::consts::*`, which is a single
    // rounded point, not an enclosure.
    #[allow(clippy::approx_constant)]
    pub const TWO_PI: Interval = Interval {
        lo: 6.283185307179586,
        hi: 6.283185307179587,
    };

    /// A sound enclosure of π/2.
    // The literals are the nearest f64 neighbors bracketing the true
    // value — intentionally not `f64::consts::*`, which is a single
    // rounded point, not an enclosure.
    #[allow(clippy::approx_constant)]
    pub const HALF_PI: Interval = Interval {
        lo: 1.5707963267948966,
        hi: 1.5707963267948968,
    };

    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN; use
    /// [`Interval::checked`] for a fallible constructor.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(
            lo <= hi,
            "invalid interval: lo={lo} must not exceed hi={hi}"
        );
        Interval { lo, hi }
    }

    /// Creates `[lo, hi]`, returning `None` when `lo > hi` or a bound is NaN.
    #[inline]
    pub fn checked(lo: f64, hi: f64) -> Option<Interval> {
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Creates the singleton `[v, v]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    #[inline]
    pub fn point(v: f64) -> Interval {
        assert!(!v.is_nan(), "cannot build a point interval from NaN");
        Interval { lo: v, hi: v }
    }

    /// A tight two-ulp enclosure of the value `v` (used when `v` arises
    /// from an inexact computation such as parsing a decimal literal).
    #[inline]
    pub fn enclose(v: f64) -> Interval {
        if v.is_nan() {
            return Interval::EMPTY;
        }
        Interval {
            lo: next_down(v),
            hi: next_up(v),
        }
    }

    /// Builds an interval from any two corner values, ordering them.
    #[inline]
    pub fn hull_of(a: f64, b: f64) -> Interval {
        if a.is_nan() || b.is_nan() {
            return Interval::EMPTY;
        }
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Lower endpoint (NaN when empty).
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint (NaN when empty).
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Returns `true` when the interval contains no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.is_nan()
    }

    /// Returns `true` when the interval is a single point.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Returns `true` when both endpoints are finite.
    #[inline]
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Width `hi - lo` (0 for points, NaN for empty, +inf when unbounded).
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Radius: half the width.
    #[inline]
    pub fn rad(&self) -> f64 {
        self.width() / 2.0
    }

    /// Midpoint. For unbounded intervals returns a finite representative
    /// (0 for `ENTIRE`, a large finite value for half-lines).
    #[inline]
    pub fn mid(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (true, true) => {
                let m = 0.5 * (self.lo + self.hi);
                if m.is_finite() {
                    m
                } else {
                    // Guard against overflow of lo+hi near the float range.
                    0.5 * self.lo + 0.5 * self.hi
                }
            }
            (true, false) => f64::MAX.min(self.lo.max(0.0) * 2.0 + 1.0e100),
            (false, true) => f64::MIN.max(self.hi.min(0.0) * 2.0 - 1.0e100),
            (false, false) => 0.0,
        }
    }

    /// Magnitude: `max(|lo|, |hi|)`.
    #[inline]
    pub fn mag(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Mignitude: the minimum absolute value over the interval.
    #[inline]
    pub fn mig(&self) -> f64 {
        if self.contains(0.0) {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    /// Relative width: width scaled by magnitude when large.
    #[inline]
    pub fn rel_width(&self) -> f64 {
        let w = self.width();
        let m = self.mag();
        if m > 1.0 {
            w / m
        } else {
            w
        }
    }

    /// Returns `true` when `v` lies in the interval.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Returns `true` when `other` is a subset of `self` (empty ⊆ anything).
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Returns `true` when `self` is a subset of the *interior* of `other`.
    #[inline]
    pub fn interior_of(&self, other: &Interval) -> bool {
        self.is_empty()
            || ((other.lo < self.lo || other.lo == f64::NEG_INFINITY)
                && (self.hi < other.hi || other.hi == f64::INFINITY))
    }

    /// Intersection (empty if disjoint).
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval::EMPTY
        }
    }

    /// Convex hull of the union.
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Splits at the midpoint into `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    #[inline]
    pub fn bisect(&self) -> (Interval, Interval) {
        assert!(!self.is_empty(), "cannot bisect the empty interval");
        let m = self.mid();
        (
            Interval { lo: self.lo, hi: m },
            Interval { lo: m, hi: self.hi },
        )
    }

    /// Splits at `at`, clamped inside; both halves share the split point.
    pub fn split_at(&self, at: f64) -> (Interval, Interval) {
        assert!(!self.is_empty(), "cannot split the empty interval");
        let at = at.clamp(self.lo, self.hi);
        (
            Interval {
                lo: self.lo,
                hi: at,
            },
            Interval {
                lo: at,
                hi: self.hi,
            },
        )
    }

    /// Widens both endpoints outward by `eps` (absolute inflation).
    pub fn inflate(&self, eps: f64) -> Interval {
        if self.is_empty() {
            return *self;
        }
        Interval {
            lo: next_down(self.lo - eps),
            hi: next_up(self.hi + eps),
        }
    }

    /// Outward widening by one ulp per side; sound wrapper for a
    /// round-to-nearest endpoint computation.
    #[inline]
    pub(crate) fn widen(lo: f64, hi: f64) -> Interval {
        if lo.is_nan() || hi.is_nan() {
            return Interval::EMPTY;
        }
        Interval {
            lo: next_down(lo),
            hi: next_up(hi),
        }
    }

    /// Constructs without widening; caller guarantees the endpoints are
    /// already outward-rounded (used for exact operations such as `neg`,
    /// `abs`, `min`, `max`, `hull`).
    #[inline]
    pub(crate) fn exact(lo: f64, hi: f64) -> Interval {
        if lo.is_nan() || hi.is_nan() {
            return Interval::EMPTY;
        }
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// The square `x²` (tighter than `x * x` because the operands are
    /// correlated: `[-1,2]² = [0,4]`, not `[-2,4]`).
    pub fn sqr(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let a = self.lo * self.lo;
        let b = self.hi * self.hi;
        if self.contains(0.0) {
            Interval::widen(0.0, a.max(b)).intersect(&Interval::new(0.0, f64::INFINITY))
        } else {
            Interval::widen(a.min(b), a.max(b))
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            -*self
        } else {
            Interval::exact(0.0, self.mag())
        }
    }

    /// Pointwise minimum `min(x, y)`.
    pub fn min_i(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::exact(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Pointwise maximum `max(x, y)`.
    pub fn max_i(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::exact(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// Multiplicative inverse `1/x`. Division by an interval containing 0
    /// yields the appropriate half-line(s) hull or `ENTIRE`.
    pub fn recip(&self) -> Interval {
        Interval::ONE / *self
    }

    /// Extended division for the interval Newton operator: returns the up
    /// to two connected components of `{ n/d : n ∈ self, d ∈ den, d ≠ 0 }`.
    pub fn div_extended(&self, den: &Interval) -> (Option<Interval>, Option<Interval>) {
        if self.is_empty() || den.is_empty() || (den.lo == 0.0 && den.hi == 0.0) {
            return (None, None);
        }
        if !den.contains(0.0) {
            return (Some(*self / *den), None);
        }
        // den straddles (or touches) zero: the quotient splits.
        let n = *self;
        if n.contains(0.0) {
            return (Some(Interval::ENTIRE), None);
        }
        // n strictly positive or strictly negative.
        let (neg_part, pos_part);
        if n.lo > 0.0 {
            // n > 0: n / [den.lo, 0) = (-inf, n.lo/den.lo], n / (0, den.hi] = [n.lo/den.hi, inf)
            neg_part = if den.lo < 0.0 {
                Some(Interval::widen(f64::NEG_INFINITY, n.lo / den.lo))
            } else {
                None
            };
            pos_part = if den.hi > 0.0 {
                Some(Interval::widen(n.lo / den.hi, f64::INFINITY))
            } else {
                None
            };
        } else {
            // n < 0.
            neg_part = if den.hi > 0.0 {
                Some(Interval::widen(f64::NEG_INFINITY, n.hi / den.hi))
            } else {
                None
            };
            pos_part = if den.lo < 0.0 {
                Some(Interval::widen(n.hi / den.lo, f64::INFINITY))
            } else {
                None
            };
        }
        match (neg_part, pos_part) {
            (Some(a), Some(b)) => (Some(a), Some(b)),
            (Some(a), None) => (Some(a), None),
            (None, Some(b)) => (Some(b), None),
            (None, None) => (None, None),
        }
    }

    /// Integer power `xⁿ` with sign-correct even/odd handling.
    pub fn powi(&self, n: i32) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        match n {
            0 => Interval::ONE,
            1 => *self,
            2 => self.sqr(),
            n if n < 0 => self.powi(-n).recip(),
            n => {
                let a = self.lo.powi(n);
                let b = self.hi.powi(n);
                if n % 2 == 0 {
                    if self.contains(0.0) {
                        Interval::widen(0.0, a.max(b)).intersect(&Interval::new(0.0, f64::INFINITY))
                    } else {
                        Interval::widen(a.min(b), a.max(b))
                    }
                } else {
                    Interval::widen(a, b)
                }
            }
        }
    }
}

impl Default for Interval {
    /// The default interval is `ZERO`.
    fn default() -> Interval {
        Interval::ZERO
    }
}

impl PartialEq for Interval {
    fn eq(&self, other: &Interval) -> bool {
        (self.is_empty() && other.is_empty()) || (self.lo == other.lo && self.hi == other.hi)
    }
}

impl PartialOrd for Interval {
    /// Set-interval order: `a < b` iff every point of `a` is below every
    /// point of `b`. Overlapping intervals are unordered.
    fn partial_cmp(&self, other: &Interval) -> Option<Ordering> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        if self == other {
            Some(Ordering::Equal)
        } else if self.hi < other.lo {
            Some(Ordering::Less)
        } else if self.lo > other.hi {
            Some(Ordering::Greater)
        } else {
            None
        }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "[{:?}, {:?}]", self.lo, self.hi)
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else if self.is_point() {
            write!(f, "[{}]", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

impl From<f64> for Interval {
    /// Converts a (non-NaN) float to a point interval; NaN maps to `EMPTY`.
    fn from(v: f64) -> Interval {
        if v.is_nan() {
            Interval::EMPTY
        } else {
            Interval::point(v)
        }
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval::exact(-self.hi, -self.lo)
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        Interval::widen(self.lo + rhs.lo, self.hi + rhs.hi)
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        Interval::widen(self.lo - rhs.hi, self.hi - rhs.lo)
    }
}

/// Multiplies endpoint pairs treating `0 * inf` as `0` (the convention for
/// interval multiplication: the infinite bound came from an unbounded
/// operand, and zero annihilates it).
#[inline]
fn mul_ep(a: f64, b: f64) -> f64 {
    let p = a * b;
    if p.is_nan() {
        0.0
    } else {
        p
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        let c = [
            mul_ep(self.lo, rhs.lo),
            mul_ep(self.lo, rhs.hi),
            mul_ep(self.hi, rhs.lo),
            mul_ep(self.hi, rhs.hi),
        ];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval::widen(lo, hi)
    }
}

impl Div for Interval {
    type Output = Interval;
    fn div(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        if rhs.lo == 0.0 && rhs.hi == 0.0 {
            // x / [0,0] is empty (no real quotient exists).
            return Interval::EMPTY;
        }
        if !rhs.contains(0.0) {
            let c = [
                self.lo / rhs.lo,
                self.lo / rhs.hi,
                self.hi / rhs.lo,
                self.hi / rhs.hi,
            ];
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in &c {
                let v = if v.is_nan() { 0.0 } else { v };
                lo = lo.min(v);
                hi = hi.max(v);
            }
            return Interval::widen(lo, hi);
        }
        // Denominator touches zero: result is unbounded on at least one side.
        if self.contains(0.0) {
            return Interval::ENTIRE;
        }
        match self.div_extended(&rhs) {
            (Some(a), Some(b)) => a.hull(&b),
            (Some(a), None) => a,
            _ => Interval::ENTIRE,
        }
    }
}

macro_rules! scalar_ops {
    ($($op:ident :: $f:ident),*) => {$(
        impl $op<f64> for Interval {
            type Output = Interval;
            fn $f(self, rhs: f64) -> Interval {
                self.$f(Interval::from(rhs))
            }
        }
        impl $op<Interval> for f64 {
            type Output = Interval;
            fn $f(self, rhs: Interval) -> Interval {
                Interval::from(self).$f(rhs)
            }
        }
    )*};
}
scalar_ops!(Add::add, Sub::sub, Mul::mul, Div::div);

macro_rules! assign_ops {
    ($($op:ident :: $f:ident => $base:ident),*) => {$(
        impl $op for Interval {
            fn $f(&mut self, rhs: Interval) {
                *self = self.$base(rhs);
            }
        }
        impl $op<f64> for Interval {
            fn $f(&mut self, rhs: f64) {
                *self = self.$base(Interval::from(rhs));
            }
        }
    )*};
}
assign_ops!(
    AddAssign::add_assign => add,
    SubAssign::sub_assign => sub,
    MulAssign::mul_assign => mul,
    DivAssign::div_assign => div
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let a = Interval::new(1.0, 2.0);
        assert_eq!(a.lo(), 1.0);
        assert_eq!(a.hi(), 2.0);
        assert!(!a.is_empty());
        assert!(!a.is_point());
        assert!(Interval::point(3.0).is_point());
        assert!(Interval::EMPTY.is_empty());
        assert!(Interval::checked(2.0, 1.0).is_none());
        assert!(Interval::checked(1.0, 2.0).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn new_rejects_inverted() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn add_sub_enclose() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-0.5, 0.25);
        let s = a + b;
        assert!(s.contains(0.5) && s.contains(2.25));
        let d = a - b;
        assert!(d.contains(0.75) && d.contains(2.5));
        // Widening makes the result a strict superset of the exact hull.
        assert!(s.lo() <= 0.5 && s.hi() >= 2.25);
    }

    #[test]
    fn mul_sign_cases() {
        let pp = Interval::new(1.0, 2.0) * Interval::new(3.0, 4.0);
        assert!(pp.contains(3.0) && pp.contains(8.0));
        let pn = Interval::new(1.0, 2.0) * Interval::new(-4.0, -3.0);
        assert!(pn.contains(-8.0) && pn.contains(-3.0));
        let mixed = Interval::new(-1.0, 2.0) * Interval::new(-3.0, 4.0);
        assert!(mixed.contains(-6.0) && mixed.contains(8.0));
        let zero = Interval::ZERO * Interval::ENTIRE;
        assert!(zero.contains(0.0));
        assert!(zero.is_bounded());
    }

    #[test]
    fn div_no_zero() {
        let q = Interval::new(1.0, 2.0) / Interval::new(4.0, 8.0);
        assert!(q.contains(0.125) && q.contains(0.5));
    }

    #[test]
    fn div_across_zero_is_unbounded() {
        let q = Interval::new(1.0, 2.0) / Interval::new(-1.0, 1.0);
        assert_eq!(q, Interval::ENTIRE);
        let q2 = Interval::new(1.0, 2.0) / Interval::new(0.0, 1.0);
        assert_eq!(q2.hi(), f64::INFINITY);
        assert!(q2.lo() <= 1.0);
        assert!(
            (Interval::new(1.0, 1.0) / Interval::ZERO).is_empty(),
            "x/[0,0] must be empty"
        );
    }

    #[test]
    fn div_extended_splits() {
        let n = Interval::new(1.0, 2.0);
        let d = Interval::new(-1.0, 1.0);
        let (a, b) = n.div_extended(&d);
        let a = a.unwrap();
        let b = b.unwrap();
        assert_eq!(a.lo(), f64::NEG_INFINITY);
        assert!(a.hi() >= -1.0);
        assert_eq!(b.hi(), f64::INFINITY);
        assert!(b.lo() <= 1.0);
    }

    #[test]
    fn sqr_is_tight_on_straddling() {
        let a = Interval::new(-1.0, 2.0);
        let s = a.sqr();
        assert_eq!(s.lo(), 0.0);
        assert!(s.hi() >= 4.0 && s.hi() < 4.1);
        // compare: naive product is much looser on the low side
        let naive = a * a;
        assert!(naive.lo() <= -2.0);
    }

    #[test]
    fn powi_cases() {
        let a = Interval::new(-2.0, 1.0);
        assert!(a.powi(2).contains(4.0));
        assert_eq!(a.powi(2).lo(), 0.0);
        assert!(a.powi(3).contains(-8.0) && a.powi(3).contains(1.0));
        assert_eq!(a.powi(0), Interval::ONE);
        assert_eq!(a.powi(1), a);
        let b = Interval::new(2.0, 4.0);
        let inv2 = b.powi(-2);
        assert!(inv2.contains(1.0 / 16.0) && inv2.contains(0.25));
    }

    #[test]
    fn abs_min_max() {
        let a = Interval::new(-3.0, 1.0);
        assert_eq!(a.abs(), Interval::new(0.0, 3.0));
        let b = Interval::new(2.0, 5.0);
        assert_eq!(a.min_i(&b), Interval::new(-3.0, 1.0));
        assert_eq!(a.max_i(&b), Interval::new(2.0, 5.0));
        assert_eq!(a.mag(), 3.0);
        assert_eq!(a.mig(), 0.0);
        assert_eq!(b.mig(), 2.0);
    }

    #[test]
    fn set_operations() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.intersect(&b), Interval::new(1.0, 2.0));
        assert_eq!(a.hull(&b), Interval::new(0.0, 3.0));
        assert!(a.intersect(&Interval::new(5.0, 6.0)).is_empty());
        assert!(a.contains_interval(&Interval::new(0.5, 1.5)));
        assert!(!a.contains_interval(&b));
        assert!(a.contains_interval(&Interval::EMPTY));
        assert!(Interval::new(0.5, 1.5).interior_of(&Interval::new(0.0, 2.0)));
        assert!(!Interval::new(0.0, 1.5).interior_of(&Interval::new(0.0, 2.0)));
    }

    #[test]
    fn bisect_and_split() {
        let a = Interval::new(0.0, 4.0);
        let (l, r) = a.bisect();
        assert_eq!(l, Interval::new(0.0, 2.0));
        assert_eq!(r, Interval::new(2.0, 4.0));
        let (l2, r2) = a.split_at(1.0);
        assert_eq!(l2.hi(), 1.0);
        assert_eq!(r2.lo(), 1.0);
        // Split point clamps inside.
        let (l3, _) = a.split_at(-7.0);
        assert_eq!(l3.width(), 0.0);
    }

    #[test]
    fn widths_and_midpoints() {
        let a = Interval::new(1.0, 3.0);
        assert_eq!(a.width(), 2.0);
        assert_eq!(a.rad(), 1.0);
        assert_eq!(a.mid(), 2.0);
        assert_eq!(Interval::ENTIRE.mid(), 0.0);
        assert!(Interval::new(0.0, f64::INFINITY).mid().is_finite());
        assert!(Interval::new(f64::NEG_INFINITY, 0.0).mid().is_finite());
        // mid never overflows for large finite bounds
        let big = Interval::new(f64::MIN / 2.0 * 3.0, f64::MAX);
        assert!(big.mid().is_finite());
    }

    #[test]
    fn ordering() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert!(a < b);
        assert!(b > a);
        let c = Interval::new(0.5, 2.5);
        assert_eq!(a.partial_cmp(&c), None);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Interval::new(1.0, 2.0)), "[1, 2]");
        assert_eq!(format!("{}", Interval::point(1.5)), "[1.5]");
        assert_eq!(format!("{}", Interval::EMPTY), "∅");
        assert!(!format!("{:?}", Interval::EMPTY).is_empty());
    }

    #[test]
    fn inflate_grows() {
        let a = Interval::new(1.0, 2.0).inflate(0.5);
        assert!(a.lo() < 0.51 && a.lo() <= 0.5);
        assert!(a.hi() >= 2.5);
    }

    #[test]
    fn empty_propagates() {
        let e = Interval::EMPTY;
        let a = Interval::new(1.0, 2.0);
        assert!((e + a).is_empty());
        assert!((a - e).is_empty());
        assert!((e * a).is_empty());
        assert!((a / e).is_empty());
        assert!((-e).is_empty());
        assert!(e.sqr().is_empty());
        assert!(e.abs().is_empty());
    }

    #[test]
    fn recip_basic() {
        let r = Interval::new(2.0, 4.0).recip();
        assert!(r.contains(0.25) && r.contains(0.5));
    }
}
