//! The typed query surface: one enum covering every analysis the
//! framework offers, replacing the former per-crate free-function zoo.

use crate::calibrate::Dataset;
use biocheck_bltl::Bltl;
use biocheck_bmc::{ReachOptions, ReachSpec};
use biocheck_expr::{Atom, Context, VarId};
use biocheck_interval::Interval;
use biocheck_smc::Dist;
use std::fmt::Write as _;

/// The probabilistic setup shared by the SMC-backed queries: how the
/// session's ODE model is randomly instantiated and which property is
/// monitored on each trajectory. Two queries with equal setups share one
/// compiled sampler (RHS program + streaming monitor plan) inside the
/// session cache.
#[derive(Clone, Debug)]
pub struct SmcSpec {
    /// One initial-state distribution per state component.
    pub init: Vec<Dist>,
    /// Randomized parameters (the rest of the environment stays 0).
    pub params: Vec<(VarId, Dist)>,
    /// The monitored BLTL property.
    pub property: Bltl,
    /// Simulation horizon.
    pub t_end: f64,
}

/// How [`Query::Estimate`] chooses its sample count.
#[derive(Clone, Copy, Debug)]
pub enum EstimateMethod {
    /// Exactly `n` samples, no statistical guarantee attached.
    Fixed {
        /// Sample count (must be > 0).
        n: usize,
    },
    /// Chernoff–Hoeffding: enough samples that
    /// `P(|p̂ − p| > eps) ≤ delta`.
    Chernoff {
        /// Absolute error bound.
        eps: f64,
        /// Failure probability.
        delta: f64,
    },
    /// Bayesian adaptive stopping: sample until the credible interval at
    /// `confidence` is narrower than `2·half_width`.
    Bayes {
        /// Target half-width of the credible interval.
        half_width: f64,
        /// Coverage of the credible interval.
        confidence: f64,
        /// Hard cap on samples for the adaptive rule.
        max_samples: usize,
    },
}

/// A typed analysis request against a [`Session`](crate::Session).
///
/// SMC-backed variants (`Estimate`, `Sprt`, `Robustness`) and the
/// δ-decision variants `Calibrate`/`Stability` need a session over an
/// ODE model; `Falsify`/`Therapy` need one over a hybrid automaton.
/// Mixing them up is an [`Error::WrongModel`](crate::Error::WrongModel),
/// not a panic.
#[derive(Clone, Debug)]
pub enum Query {
    /// Estimate the satisfaction probability of a BLTL property.
    Estimate {
        /// Random instantiation + property.
        smc: SmcSpec,
        /// Sample-count policy.
        method: EstimateMethod,
    },
    /// Wald's SPRT for `H₀: p ≥ θ+δᵢ` vs `H₁: p ≤ θ−δᵢ`.
    Sprt {
        /// Random instantiation + property.
        smc: SmcSpec,
        /// The threshold θ.
        theta: f64,
        /// Indifference half-width δᵢ.
        indiff: f64,
        /// Type-I error bound.
        alpha: f64,
        /// Type-II error bound.
        beta: f64,
        /// Hard cap on samples before giving up (`Inconclusive`).
        max_samples: usize,
    },
    /// Quantitative semantics: mean/min robustness plus p̂ over a fixed
    /// number of samples.
    Robustness {
        /// Random instantiation + property.
        smc: SmcSpec,
        /// Sample count (must be > 0).
        samples: usize,
    },
    /// Model falsification: prove a behavior unreachable for *every*
    /// admissible parameter value (`unsat` rejects the hypothesis).
    Falsify {
        /// The reachability question.
        spec: ReachSpec,
        /// Solver configuration (budget fields are overridden by the
        /// query's [`Budget`](crate::Budget) when set).
        opts: ReachOptions,
    },
    /// Shortest-schedule therapy synthesis over a treatment automaton.
    Therapy {
        /// The reachability question encoding the therapeutic goal.
        spec: ReachSpec,
        /// Solver configuration (budget fields overridden as above).
        opts: ReachOptions,
    },
    /// BioPSy-style guaranteed parameter synthesis from time-series
    /// data, against the session's ODE model.
    Calibrate {
        /// The observations.
        data: Dataset,
        /// Known initial state (one value per state component).
        init: Vec<f64>,
        /// Unknown parameters with their prior ranges.
        params: Vec<(VarId, Interval)>,
        /// Physical bounds per state component.
        state_bounds: Vec<Interval>,
        /// δ of the decision procedure.
        delta: f64,
        /// Validated-integration base step.
        flow_step: f64,
    },
    /// Equilibrium localization + Lyapunov certification.
    Stability {
        /// Search region (one interval per state component).
        region: Vec<Interval>,
        /// Inner radius of the certification annulus.
        r_min: f64,
        /// Outer radius of the certification annulus.
        r_max: f64,
    },
    /// Static pre-flight analysis: interval-based domain diagnostics
    /// plus structural checks, with no solving or sampling. Works on
    /// both ODE and hybrid sessions and is read-only — the arena,
    /// artifact cache, and every other query's fingerprint are
    /// provably unchanged by running it.
    Lint {
        /// Assumed variable boxes (unlisted variables default to
        /// `[0, ∞)`; hybrid parameter ranges apply automatically).
        ranges: Vec<(VarId, Interval)>,
        /// Declared parameters/constants for the unused-entity checks.
        declared: Vec<VarId>,
        /// Optional BLTL property to check atoms of.
        property: Option<Bltl>,
    },
}

impl Query {
    /// A canonical, context-independent rendering of the query: every
    /// expression is printed through [`Context::display`] (names, not
    /// arena ids), floats render in their shortest round-trip form, and
    /// field order is fixed. Two queries canonicalize equally iff they
    /// describe the same analysis — even when their `NodeId`s differ
    /// because the host contexts interned expressions in different
    /// orders. This is the query component of result-memoization keys
    /// (`biocheck_serve`): keying on `Debug` output would let one
    /// arena's `NodeId(17)` collide with a different expression at the
    /// same id in a rebuilt session.
    ///
    /// `cx` must be the context the query's expressions live in.
    pub fn canonical(&self, cx: &Context) -> String {
        let mut s = String::new();
        match self {
            Query::Estimate { smc, method } => {
                s.push_str("estimate{");
                push_smc(&mut s, cx, smc);
                match *method {
                    EstimateMethod::Fixed { n } => {
                        let _ = write!(s, ";fixed(n={n})");
                    }
                    EstimateMethod::Chernoff { eps, delta } => {
                        let _ = write!(s, ";chernoff(eps={eps:?},delta={delta:?})");
                    }
                    EstimateMethod::Bayes {
                        half_width,
                        confidence,
                        max_samples,
                    } => {
                        let _ = write!(
                            s,
                            ";bayes(hw={half_width:?},conf={confidence:?},cap={max_samples})"
                        );
                    }
                }
                s.push('}');
            }
            Query::Sprt {
                smc,
                theta,
                indiff,
                alpha,
                beta,
                max_samples,
            } => {
                s.push_str("sprt{");
                push_smc(&mut s, cx, smc);
                let _ = write!(
                    s,
                    ";theta={theta:?};indiff={indiff:?};alpha={alpha:?};beta={beta:?};cap={max_samples}}}"
                );
            }
            Query::Robustness { smc, samples } => {
                s.push_str("robustness{");
                push_smc(&mut s, cx, smc);
                let _ = write!(s, ";n={samples}}}");
            }
            Query::Falsify { spec, opts } => {
                s.push_str("falsify{");
                push_reach(&mut s, cx, spec, opts);
                s.push('}');
            }
            Query::Therapy { spec, opts } => {
                s.push_str("therapy{");
                push_reach(&mut s, cx, spec, opts);
                s.push('}');
            }
            Query::Calibrate {
                data,
                init,
                params,
                state_bounds,
                delta,
                flow_step,
            } => {
                let _ = write!(
                    s,
                    "calibrate{{times={:?};values={:?};observed={:?};tol={:?};init={:?}",
                    data.times, data.values, data.observed, data.tolerance, init
                );
                s.push_str(";params=[");
                for (i, (v, range)) in params.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{}:{}", cx.var_name(*v), range);
                }
                let _ = write!(
                    s,
                    "];bounds={:?};delta={delta:?};step={flow_step:?}}}",
                    state_bounds
                        .iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                );
            }
            Query::Stability {
                region,
                r_min,
                r_max,
            } => {
                let _ = write!(
                    s,
                    "stability{{region={:?};r_min={r_min:?};r_max={r_max:?}}}",
                    region.iter().map(|i| i.to_string()).collect::<Vec<_>>()
                );
            }
            Query::Lint {
                ranges,
                declared,
                property,
            } => {
                s.push_str("lint{ranges=[");
                for (i, (v, range)) in ranges.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{}:{}", cx.var_name(*v), range);
                }
                s.push_str("];declared=[");
                for (i, v) in declared.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(cx.var_name(*v));
                }
                s.push_str("];prop=");
                match property {
                    Some(p) => push_bltl(&mut s, cx, p),
                    None => s.push_str("none"),
                }
                s.push('}');
            }
        }
        s
    }

    /// The discriminant, carried on every [`Report`](crate::Report).
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::Estimate { .. } => QueryKind::Estimate,
            Query::Sprt { .. } => QueryKind::Sprt,
            Query::Robustness { .. } => QueryKind::Robustness,
            Query::Falsify { .. } => QueryKind::Falsify,
            Query::Therapy { .. } => QueryKind::Therapy,
            Query::Calibrate { .. } => QueryKind::Calibrate,
            Query::Stability { .. } => QueryKind::Stability,
            Query::Lint { .. } => QueryKind::Lint,
        }
    }
}

fn push_atom(s: &mut String, cx: &Context, atom: &Atom) {
    let op = match atom.op {
        biocheck_expr::RelOp::Gt => "gt",
        biocheck_expr::RelOp::Ge => "ge",
        biocheck_expr::RelOp::Eq => "eq",
        biocheck_expr::RelOp::Le => "le",
        biocheck_expr::RelOp::Lt => "lt",
    };
    let _ = write!(s, "{op}({})", cx.display(atom.expr));
}

fn push_bltl(s: &mut String, cx: &Context, f: &Bltl) {
    match f {
        Bltl::Prop(a) => push_atom(s, cx, a),
        Bltl::Not(inner) => {
            s.push_str("not(");
            push_bltl(s, cx, inner);
            s.push(')');
        }
        Bltl::And(fs) => {
            s.push_str("and(");
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_bltl(s, cx, g);
            }
            s.push(')');
        }
        Bltl::Or(fs) => {
            s.push_str("or(");
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_bltl(s, cx, g);
            }
            s.push(')');
        }
        Bltl::Until { lhs, rhs, bound } => {
            s.push_str("until(");
            push_bltl(s, cx, lhs);
            s.push(',');
            push_bltl(s, cx, rhs);
            let _ = write!(s, ",{bound:?})");
        }
    }
}

fn push_dist(s: &mut String, d: &Dist) {
    match *d {
        Dist::Point(v) => {
            let _ = write!(s, "point({v:?})");
        }
        Dist::Uniform(lo, hi) => {
            let _ = write!(s, "uniform({lo:?},{hi:?})");
        }
        Dist::Normal { mean, sd } => {
            let _ = write!(s, "normal({mean:?},{sd:?})");
        }
        Dist::LogNormal { mu, sigma } => {
            let _ = write!(s, "lognormal({mu:?},{sigma:?})");
        }
    }
}

fn push_smc(s: &mut String, cx: &Context, smc: &SmcSpec) {
    s.push_str("init=[");
    for (i, d) in smc.init.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_dist(s, d);
    }
    s.push_str("];params=[");
    for (i, (v, d)) in smc.params.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}:", cx.var_name(*v));
        push_dist(s, d);
    }
    s.push_str("];prop=");
    push_bltl(s, cx, &smc.property);
    let _ = write!(s, ";t_end={:?}", smc.t_end);
}

fn push_reach(s: &mut String, cx: &Context, spec: &ReachSpec, opts: &ReachOptions) {
    let _ = write!(s, "goal_mode={:?};goal=[", spec.goal_mode);
    for (i, a) in spec.goal.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_atom(s, cx, a);
    }
    let _ = write!(
        s,
        "];k={};T={:?};delta={:?};bounds={:?};splits={};step={:?};paths={}",
        spec.k_max,
        spec.time_bound,
        opts.delta,
        opts.state_bounds
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>(),
        opts.max_splits,
        opts.flow_step,
        opts.max_paths
    );
}

/// Discriminant of a [`Query`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// [`Query::Estimate`]
    Estimate,
    /// [`Query::Sprt`]
    Sprt,
    /// [`Query::Robustness`]
    Robustness,
    /// [`Query::Falsify`]
    Falsify,
    /// [`Query::Therapy`]
    Therapy,
    /// [`Query::Calibrate`]
    Calibrate,
    /// [`Query::Stability`]
    Stability,
    /// [`Query::Lint`]
    Lint,
}
