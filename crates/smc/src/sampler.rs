//! Random model instantiation and Bernoulli sampling.
//!
//! The hot path is **fused simulate-and-monitor**: the BLTL property is
//! compiled once (at [`TraceSampler::new`]) into a streaming
//! [`CompiledBltl`] plan, and each sample drives the integrator's
//! step-streaming entry point, feeding every accepted step to the
//! monitor and stopping the moment the Boolean verdict decides. No
//! [`Trace`](biocheck_ode::Trace) is materialized, no
//! [`Monitor`] is built, and — with a reused [`SampleScratch`] — the
//! steady-state loop performs zero heap allocations (enforced by
//! `tests/alloc.rs`). Early termination cannot change any property
//! verdict: a verdict decided on a prefix equals the offline verdict on
//! the full trajectory (property-tested against
//! [`TraceSampler::sample_offline`] in `tests/prop.rs`).
//!
//! One deliberate edge-case divergence from the pre-fusion pipeline:
//! when a trajectory's ODE would blow up *after* the streaming verdict
//! has already decided, the fused path keeps the decided verdict (the
//! observed prefix fully determines the property), while the offline
//! reference — which always integrates the whole horizon — hits the
//! integration error and conservatively counts the sample as a
//! violation. Simulation failures *before* the verdict decides count as
//! violations on both paths.

use biocheck_bltl::{Bltl, CompiledBltl, Monitor, MonitorScratch};
use biocheck_expr::{Context, VarId};
use biocheck_ode::{CompiledOde, DormandPrince, OdeScratch, OdeSystem, StepControl};
use rand::Rng;

/// A sampling distribution for an initial state or parameter.
#[derive(Clone, Debug)]
pub enum Dist {
    /// Deterministic value.
    Point(f64),
    /// Uniform on `[lo, hi]`.
    Uniform(f64, f64),
    /// Normal with the given mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        sd: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))`.
    LogNormal {
        /// Location (of the underlying normal).
        mu: f64,
        /// Scale (of the underlying normal).
        sigma: f64,
    },
}

impl Dist {
    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Point(v) => v,
            Dist::Uniform(lo, hi) => rng.gen_range(lo..=hi),
            Dist::Normal { mean, sd } => mean + sd * standard_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
        }
    }

    /// The distribution mean (exact).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Point(v) => v,
            Dist::Uniform(lo, hi) => 0.5 * (lo + hi),
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
        }
    }
}

/// Box–Muller standard normal. The guarded loop rejects `u1` values too
/// close to zero so `ln(u1)` can never produce an infinity; the loop
/// terminates with overwhelming probability on the first draw (the vendored
/// `rand` generates `u1 = 0` with probability 2⁻⁵³ per attempt).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Reusable per-worker workspace for fused sampling: the parameter
/// environment, the initial-state buffer, the integrator's step buffers,
/// and the streaming monitor's arena. After the first sample through a
/// given sampler (warm-up), every subsequent sample through the same
/// scratch is allocation-free.
#[derive(Clone, Debug, Default)]
pub struct SampleScratch {
    env: Vec<f64>,
    y0: Vec<f64>,
    ode: OdeScratch,
    mon: MonitorScratch,
}

impl SampleScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> SampleScratch {
        SampleScratch::default()
    }
}

/// Outcome of one instrumented Bernoulli sample.
#[derive(Copy, Clone, Debug)]
pub struct SampleStats {
    /// Did the property hold on this trajectory?
    pub sat: bool,
    /// Number of integration samples taken (initial point included).
    pub steps: usize,
    /// Did the streaming verdict decide before the time horizon, cutting
    /// the integration short?
    pub early_stop: bool,
}

/// Draws random instantiations of an ODE model and monitors a BLTL
/// property on each simulated trace.
pub struct TraceSampler {
    cx: Context,
    ode: CompiledOde,
    states: Vec<VarId>,
    init: Vec<Dist>,
    params: Vec<(VarId, Dist)>,
    property: Bltl,
    plan: CompiledBltl,
    t_end: f64,
    integrator: DormandPrince,
}

impl TraceSampler {
    /// Creates a sampler. The property is compiled once, here, into a
    /// streaming monitor plan; per-sample monitoring builds nothing.
    ///
    /// # Panics
    ///
    /// Panics when `init` does not match the system dimension.
    pub fn new(
        cx: Context,
        sys: &OdeSystem,
        init: Vec<Dist>,
        params: Vec<(VarId, Dist)>,
        property: Bltl,
        t_end: f64,
    ) -> TraceSampler {
        let ode = sys.compile(&cx);
        let plan = CompiledBltl::compile(&cx, &sys.states, &property);
        TraceSampler::from_artifacts(cx, ode, plan, init, params, property, t_end)
    }

    /// Assembles a sampler from **precompiled** artifacts: a compiled
    /// RHS and a compiled streaming-monitor plan. Performs no lowering
    /// of any kind — this is the constructor behind the engine crate's
    /// per-session artifact cache, where the RHS is compiled once per
    /// model and each formula's plan once per session, then shared
    /// across every query that reuses them.
    ///
    /// `property` must be the formula `plan` was compiled from (it backs
    /// [`TraceSampler::sample_offline`], the reference path).
    ///
    /// # Panics
    ///
    /// Panics when `init` does not match the system dimension.
    pub fn from_artifacts(
        cx: Context,
        ode: CompiledOde,
        plan: CompiledBltl,
        init: Vec<Dist>,
        params: Vec<(VarId, Dist)>,
        property: Bltl,
        t_end: f64,
    ) -> TraceSampler {
        assert_eq!(init.len(), ode.dim(), "one init distribution per state");
        TraceSampler {
            states: ode.states().to_vec(),
            ode,
            plan,
            cx,
            init,
            params,
            property,
            t_end,
            integrator: DormandPrince::with_tolerances(1e-6, 1e-8),
        }
    }

    /// A workspace for [`TraceSampler::sample_with`] and friends; hold
    /// one per worker and reuse it across samples.
    pub fn scratch(&self) -> SampleScratch {
        SampleScratch::new()
    }

    /// Draws the random instantiation into `scratch.env` / `scratch.y0`.
    /// This is the only RNG consumption of a sample, so early
    /// termination never perturbs the per-index random streams.
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut SampleScratch) {
        scratch.env.clear();
        scratch.env.resize(self.cx.num_vars(), 0.0);
        for (v, d) in &self.params {
            scratch.env[v.index()] = d.sample(rng);
        }
        scratch.y0.clear();
        for d in &self.init {
            scratch.y0.push(d.sample(rng));
        }
    }

    /// Draws one Bernoulli sample: simulate a random instantiation and
    /// return whether the property holds (failed simulations count as
    /// violations — the conservative reading).
    ///
    /// Allocates a fresh [`SampleScratch`] per call; hot loops should
    /// hold one and use [`TraceSampler::sample_with`].
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.sample_with(rng, &mut self.scratch())
    }

    /// Fused simulate-and-monitor Bernoulli sample through a reused
    /// scratch: integration stops the moment the streaming verdict
    /// decides, and the steady-state loop is allocation-free.
    pub fn sample_with<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut SampleScratch) -> bool {
        self.sample_stats_with(rng, scratch).sat
    }

    /// [`TraceSampler::sample_with`] plus instrumentation: integration
    /// step count and whether the verdict decided early.
    pub fn sample_stats_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut SampleScratch,
    ) -> SampleStats {
        self.draw(rng, scratch);
        let SampleScratch { env, y0, ode, mon } = scratch;
        self.plan.begin(mon, env);
        let plan = &self.plan;
        let res = self.integrator.integrate_streaming(
            &self.ode,
            env,
            y0,
            (0.0, self.t_end),
            ode,
            |t, y, _dy| {
                if plan.feed(mon, t, y).decided() {
                    StepControl::Stop
                } else {
                    StepControl::Continue
                }
            },
        );
        match res {
            Ok(end) => SampleStats {
                sat: self.plan.finish_bool(mon),
                steps: end.steps,
                early_stop: end.stopped_early,
            },
            // Failed simulations count as violations (conservative), as
            // in the offline path.
            Err(_) => SampleStats {
                sat: false,
                steps: mon.samples(),
                early_stop: false,
            },
        }
    }

    /// Draws one sample, returning `(satisfied, robustness)`.
    ///
    /// Allocates a fresh scratch; hot loops should use
    /// [`TraceSampler::sample_robustness_with`].
    pub fn sample_robustness<R: Rng + ?Sized>(&self, rng: &mut R) -> (bool, f64) {
        self.sample_robustness_with(rng, &mut self.scratch())
    }

    /// Fused single-pass `(satisfied, robustness)` sample. Robustness
    /// needs the whole horizon, so there is no early termination, but
    /// simulation and both semantics still run in one pass with no trace
    /// materialization and no steady-state allocation.
    pub fn sample_robustness_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut SampleScratch,
    ) -> (bool, f64) {
        self.draw(rng, scratch);
        let SampleScratch { env, y0, ode, mon } = scratch;
        self.plan.begin(mon, env);
        let plan = &self.plan;
        let res = self.integrator.integrate_streaming(
            &self.ode,
            env,
            y0,
            (0.0, self.t_end),
            ode,
            |t, y, _dy| {
                plan.feed(mon, t, y);
                StepControl::Continue
            },
        );
        match res {
            Ok(_) => (self.plan.finish_bool(mon), self.plan.finish_robustness(mon)),
            Err(_) => (false, f64::NEG_INFINITY),
        }
    }

    /// Reference implementation used by the equivalence property tests:
    /// integrate the full horizon into a trace, then monitor it offline
    /// with a freshly built [`Monitor`] — exactly the pre-fusion
    /// pipeline. Returns `(satisfied, robustness)`.
    ///
    /// Equals the fused path whenever full-horizon integration
    /// succeeds. The one divergence: a trajectory that blows up *after*
    /// the streaming verdict decided is a conservative `false` here but
    /// keeps its decided verdict on the fused path (see the module
    /// docs).
    pub fn sample_offline<R: Rng + ?Sized>(&self, rng: &mut R) -> (bool, f64) {
        let mut env = vec![0.0; self.cx.num_vars()];
        for (v, d) in &self.params {
            env[v.index()] = d.sample(rng);
        }
        let y0: Vec<f64> = self.init.iter().map(|d| d.sample(rng)).collect();
        match self
            .integrator
            .integrate(&self.ode, &env, &y0, (0.0, self.t_end))
        {
            Ok(trace) => {
                let mut mon = Monitor::new(&self.cx, &self.states).with_env(env);
                let sat = mon.check(&self.property, &trace);
                let rob = mon.robustness(&self.property, &trace);
                (sat, rob)
            }
            Err(_) => (false, f64::NEG_INFINITY),
        }
    }

    /// Estimates the satisfaction probability with `n` simple samples
    /// (one scratch reused across all of them).
    pub fn estimate<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> f64 {
        let mut scratch = self.scratch();
        let mut hits = 0usize;
        for _ in 0..n {
            if self.sample_with(rng, &mut scratch) {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biocheck_expr::{Atom, RelOp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dist_sampling_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in [
            Dist::Point(2.0),
            Dist::Uniform(1.0, 3.0),
            Dist::Normal { mean: 2.0, sd: 0.5 },
        ] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - d.mean()).abs() < 0.1,
                "{d:?}: sample mean {mean} vs {}",
                d.mean()
            );
        }
        // Log-normal is skewed; just check positivity and rough mean.
        let d = Dist::LogNormal {
            mu: 0.0,
            sigma: 0.25,
        };
        let mut all_positive = true;
        for _ in 0..100 {
            all_positive &= d.sample(&mut rng) > 0.0;
        }
        assert!(all_positive);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dist::Uniform(-2.0, -1.0);
        for _ in 0..200 {
            let v = d.sample(&mut rng);
            assert!((-2.0..=-1.0).contains(&v));
        }
    }

    /// Decay from x₀ ~ U[0.5, 1.5]: F≤5 (x ≤ 0.2) always true (slowest
    /// case 1.5·e⁻⁵ ≈ 0.01), while F≤5 (x ≥ 2) is always false.
    fn decay_sampler(prop_src: &str, op: RelOp) -> TraceSampler {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let rhs = cx.parse("-x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        let e = cx.parse(prop_src).unwrap();
        let prop = Bltl::eventually(5.0, Bltl::Prop(Atom::new(e, op)));
        TraceSampler::new(cx, &sys, vec![Dist::Uniform(0.5, 1.5)], vec![], prop, 5.0)
    }

    #[test]
    fn certain_property_samples_true() {
        let s = decay_sampler("0.2 - x", RelOp::Ge);
        let mut rng = StdRng::seed_from_u64(42);
        assert!((0..50).all(|_| s.sample(&mut rng)));
        assert_eq!(s.estimate(&mut rng, 20), 1.0);
    }

    #[test]
    fn impossible_property_samples_false() {
        let s = decay_sampler("x - 2", RelOp::Ge);
        let mut rng = StdRng::seed_from_u64(42);
        assert!((0..50).all(|_| !s.sample(&mut rng)));
    }

    #[test]
    fn threshold_property_has_intermediate_probability() {
        // x₀ ~ U[0.5, 1.5]; G≤1 (x ≥ x₀·e⁻¹ threshold)… simpler: initial
        // value already decides: F≤0.01 (x ≥ 1) ⇔ x₀ ≥ ~1 ⇒ p ≈ 0.5.
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let rhs = cx.parse("-x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        let e = cx.parse("x - 1").unwrap();
        let prop = Bltl::eventually(0.01, Bltl::Prop(Atom::new(e, RelOp::Ge)));
        let s = TraceSampler::new(cx, &sys, vec![Dist::Uniform(0.5, 1.5)], vec![], prop, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let p = s.estimate(&mut rng, 600);
        assert!((p - 0.5).abs() < 0.1, "p = {p}");
    }

    #[test]
    fn robustness_reported() {
        let s = decay_sampler("0.2 - x", RelOp::Ge);
        let mut rng = StdRng::seed_from_u64(9);
        let (sat, rob) = s.sample_robustness(&mut rng);
        assert!(sat && rob > 0.0);
    }
}
