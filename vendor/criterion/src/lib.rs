//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the macro/bench surface `benches/experiments.rs` uses:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is plain wall clock over the
//! configured sample count with a median/min/max summary — no warmup
//! phases, outlier analysis, or HTML reports.
//!
//! Bench targets using this shim must set `harness = false`.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            sample_size,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints a summary line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Ends the group (printing nothing extra in this shim).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut b);
    if b.times.is_empty() {
        println!("  {id}: (no measurements)");
        return;
    }
    b.times.sort();
    let min = b.times[0];
    let med = b.times[b.times.len() / 2];
    let max = b.times[b.times.len() - 1];
    println!(
        "  {id}: median {med:?} (min {min:?}, max {max:?}, n = {})",
        b.times.len()
    );
}

/// Passed to the closure registered with `bench_function`.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once per configured sample, recording wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
        }
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
