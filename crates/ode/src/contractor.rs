//! The flow contractor: an ODE constraint `x_t = flow(x_0, τ)` as an ICP
//! [`Contractor`], the key ingredient of the Reach encoding (Sec. III-C).

use crate::system::OdeSystem;
use crate::validated::ValidatedOde;
use biocheck_expr::{Atom, Context, NodeId, Program, RelOp, VarId};
use biocheck_icp::{Contractor, Outcome};
use biocheck_interval::{IBox, Interval};

/// Connects three groups of solver variables — entry state `x₀`, exit
/// state `x_t`, and dwell time `τ` — through the validated flow of an ODE
/// system, pruning all three plus nothing else. Mode invariants are
/// enforced *along* the flow, realizing the `∀[0,t]` part of the Reach
/// encoding.
///
/// The solver box is indexed by the shared [`Context`]'s variables. The
/// model's own state variables are used as scratch during integration;
/// parameters are read from the solver box directly (they are ordinary
/// context variables).
pub struct FlowContractor {
    fwd: ValidatedOde,
    bwd: ValidatedOde,
    /// Solver variables holding the mode-entry state.
    x0: Vec<VarId>,
    /// Solver variables holding the mode-exit state.
    xt: Vec<VarId>,
    /// Solver variable holding the dwell duration.
    time: VarId,
    /// Invariant atoms over the model state vars, compiled for enclosure
    /// checks: `(program over env, relops)`.
    inv_prog: Option<Program>,
    inv_ops: Vec<RelOp>,
    env_len: usize,
    label: String,
}

impl FlowContractor {
    /// Builds the contractor.
    ///
    /// * `sys` — the mode's dynamics (over model state variables).
    /// * `x0`/`xt` — solver variables for entry/exit states (may coincide
    ///   with the model state variables for single-step encodings).
    /// * `time` — solver variable for the dwell duration (`≥ 0`).
    /// * `invariants` — atoms over model state variables that must hold
    ///   along the whole flow.
    ///
    /// # Panics
    ///
    /// Panics when the variable groups disagree with the system dimension.
    pub fn new(
        cx: &mut Context,
        sys: &OdeSystem,
        x0: Vec<VarId>,
        xt: Vec<VarId>,
        time: VarId,
        invariants: &[Atom],
    ) -> FlowContractor {
        assert_eq!(x0.len(), sys.dim(), "x0 arity");
        assert_eq!(xt.len(), sys.dim(), "xt arity");
        let fwd = ValidatedOde::new(cx, sys);
        let rev = sys.reversed(cx);
        let bwd = ValidatedOde::new(cx, &rev);
        let inv_exprs: Vec<NodeId> = invariants.iter().map(|a| a.expr).collect();
        let inv_prog = if inv_exprs.is_empty() {
            None
        } else {
            Some(Program::compile(cx, &inv_exprs))
        };
        FlowContractor {
            fwd,
            bwd,
            x0,
            xt,
            time,
            inv_prog,
            inv_ops: invariants.iter().map(|a| a.op).collect(),
            env_len: cx.num_vars(),
            label: "flow".to_string(),
        }
    }

    /// Sets a diagnostic label (e.g. the mode name).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> FlowContractor {
        self.label = label.into();
        self
    }

    /// Tunes the validated integrator step size for both directions.
    #[must_use]
    pub fn with_step(mut self, h0: f64) -> FlowContractor {
        self.fwd.h0 = h0;
        self.bwd.h0 = h0;
        self
    }

    /// The largest time value where the invariant can still hold, given a
    /// tube; `None` when the invariant fails immediately.
    fn invariant_cutoff(&self, env: &mut IBox, tube: &crate::validated::FlowTube) -> Option<f64> {
        let prog = match &self.inv_prog {
            None => return Some(f64::INFINITY),
            Some(p) => p,
        };
        let mut vals = vec![Interval::ZERO; self.inv_ops.len()];
        // Start box.
        for (&v, i) in self.fwd.states().iter().zip(0..) {
            env[v.index()] = tube.start[i];
        }
        prog.eval_interval_into(env, &mut vals);
        if vals
            .iter()
            .zip(&self.inv_ops)
            .any(|(&iv, &op)| Atom::new(NodeId::from_raw(0), op).refuted_by(iv))
        {
            return None;
        }
        for s in &tube.steps {
            for (&v, i) in self.fwd.states().iter().zip(0..) {
                env[v.index()] = s.range[i];
            }
            prog.eval_interval_into(env, &mut vals);
            let refuted = vals
                .iter()
                .zip(&self.inv_ops)
                .any(|(&iv, &op)| Atom::new(NodeId::from_raw(0), op).refuted_by(iv));
            if refuted {
                // No trajectory survives past the start of this window.
                return Some(s.t0);
            }
        }
        Some(f64::INFINITY)
    }

    fn project(&self, bx: &IBox, vars: &[VarId]) -> IBox {
        vars.iter().map(|v| bx[v.index()]).collect()
    }
}

impl Contractor for FlowContractor {
    fn contract(&self, bx: &mut IBox) -> Outcome {
        let x0 = self.project(bx, &self.x0);
        let xt = self.project(bx, &self.xt);
        let t = bx[self.time.index()].intersect(&Interval::new(0.0, f64::INFINITY));
        if x0.is_empty() || xt.is_empty() || t.is_empty() {
            return Outcome::Empty;
        }
        if !t.is_bounded() || x0.iter().any(|d| !d.is_bounded()) {
            return Outcome::Unchanged; // wait for other contractors to bound us
        }
        let mut env = bx.clone();
        if env.len() < self.env_len {
            for _ in env.len()..self.env_len {
                env.push(Interval::ZERO);
            }
        }

        // Forward pass.
        let tube = match self.fwd.flow(&env.clone(), &x0, t.hi()) {
            Ok(tube) => tube,
            Err(_) => return Outcome::Unchanged, // cannot certify: no pruning
        };
        let mut t_hi = t.hi().min(tube.duration().max(0.0));
        if tube.truncated && t.lo() > tube.duration() {
            // We could not integrate far enough to say anything about the
            // required dwell window: bail out without pruning.
            return Outcome::Unchanged;
        }
        // Invariant cutoff caps the dwell time.
        let mut invariant_capped = false;
        match self.invariant_cutoff(&mut env.clone(), &tube) {
            None => return Outcome::Empty,
            Some(cut) => {
                if cut < t.lo() {
                    return Outcome::Empty;
                }
                if cut <= tube.duration() {
                    invariant_capped = true;
                    t_hi = t_hi.min(cut);
                }
            }
        }
        // A truncated tube only covers dwell times up to `duration`:
        // pruning the exit box is sound only if nothing beyond the covered
        // prefix is admissible — either because the requested dwell ends
        // inside it, or because the invariant cuts the trajectory inside it.
        if tube.truncated && !invariant_capped && t.hi() > tube.duration() {
            return Outcome::Unchanged;
        }
        // Reachable exit states within the dwell window.
        let reach = tube.states_over(t.lo(), t_hi);
        let new_xt = xt.intersect(&reach);
        if new_xt.is_empty() {
            return Outcome::Empty;
        }
        // Times at which the (narrowed) exit box is reachable.
        let t_window = match tube.times_reaching(&new_xt) {
            None => return Outcome::Empty,
            Some(w) => w.intersect(&Interval::new(t.lo(), t_hi)),
        };
        if t_window.is_empty() {
            return Outcome::Empty;
        }

        // Backward pass: flow the exit box backwards to prune the entry.
        let new_x0 = match self.bwd.flow(&env.clone(), &new_xt, t_window.hi()) {
            Ok(btube) if !btube.truncated => {
                let back_reach = btube.states_over(t_window.lo(), t_window.hi());
                let nx0 = x0.intersect(&back_reach);
                if nx0.is_empty() {
                    return Outcome::Empty;
                }
                nx0
            }
            _ => x0.clone(),
        };

        // Write back.
        let mut changed = false;
        let write = |bx: &mut IBox, vars: &[VarId], vals: &IBox| -> bool {
            let mut any = false;
            for (&v, i) in vars.iter().zip(0..) {
                if bx[v.index()] != vals[i] {
                    bx[v.index()] = vals[i];
                    any = true;
                }
            }
            any
        };
        changed |= write(bx, &self.xt, &new_xt);
        changed |= write(bx, &self.x0, &new_x0);
        let new_t = bx[self.time.index()].intersect(&t_window);
        if new_t.is_empty() {
            return Outcome::Empty;
        }
        if new_t != bx[self.time.index()] {
            bx[self.time.index()] = new_t;
            changed = true;
        }
        if changed {
            Outcome::Reduced
        } else {
            Outcome::Unchanged
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a solver setting for x' = -x with separate x0/xt/τ vars.
    /// Returns (cx, contractor, indices of [x0, xt, tau]).
    fn decay_setting() -> (Context, FlowContractor, [usize; 3]) {
        let mut cx = Context::new();
        let x = cx.intern_var("x"); // model state (scratch)
        let rhs = cx.parse("-x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        let x0 = cx.intern_var("x0");
        let xt = cx.intern_var("xt");
        let tau = cx.intern_var("tau");
        let fc = FlowContractor::new(&mut cx, &sys, vec![x0], vec![xt], tau, &[]);
        let idx = [x0.index(), xt.index(), tau.index()];
        (cx, fc, idx)
    }

    fn full_box(cx: &Context) -> IBox {
        IBox::uniform(cx.num_vars(), Interval::ZERO)
    }

    #[test]
    fn forward_prunes_exit_state() {
        let (cx, fc, [i0, it, itau]) = decay_setting();
        let mut bx = full_box(&cx);
        bx[i0] = Interval::new(1.0, 2.0);
        bx[it] = Interval::new(0.0, 10.0);
        bx[itau] = Interval::point(1.0);
        let out = fc.contract(&mut bx);
        assert_eq!(out, Outcome::Reduced);
        // True reach set at τ=1: [e⁻¹, 2e⁻¹] ≈ [0.368, 0.736].
        assert!(bx[it].contains((-1.0f64).exp()));
        assert!(bx[it].contains(2.0 * (-1.0f64).exp()));
        assert!(
            bx[it].hi() < 1.2,
            "pruned from 10 to ≈0.74, got {:?}",
            bx[it]
        );
        assert!(bx[it].lo() > 0.2);
    }

    #[test]
    fn infeasible_exit_detected() {
        let (cx, fc, [i0, it, itau]) = decay_setting();
        let mut bx = full_box(&cx);
        bx[i0] = Interval::new(1.0, 2.0);
        bx[it] = Interval::new(5.0, 6.0); // decay can't grow
        bx[itau] = Interval::new(0.0, 1.0);
        assert_eq!(fc.contract(&mut bx), Outcome::Empty);
    }

    #[test]
    fn backward_prunes_entry_state() {
        let (cx, fc, [i0, it, itau]) = decay_setting();
        let mut bx = full_box(&cx);
        bx[i0] = Interval::new(0.1, 3.0);
        bx[it] = Interval::new(0.36, 0.38); // ≈ e⁻¹: x0 ≈ 1
        bx[itau] = Interval::point(1.0);
        let out = fc.contract(&mut bx);
        assert_ne!(out, Outcome::Empty);
        assert!(bx[i0].contains(1.0));
        assert!(
            bx[i0].width() < 1.0,
            "entry should be pruned near 1: {:?}",
            bx[i0]
        );
    }

    #[test]
    fn time_pruned_by_target() {
        let (cx, fc, [i0, it, itau]) = decay_setting();
        let mut bx = full_box(&cx);
        bx[i0] = Interval::point(1.0);
        bx[it] = Interval::new(0.35, 0.40); // reached near t = 1
        bx[itau] = Interval::new(0.0, 3.0);
        let out = fc.contract(&mut bx);
        assert_ne!(out, Outcome::Empty);
        assert!(bx[itau].contains(1.0));
        assert!(bx[itau].lo() > 0.5, "{:?}", bx[itau]);
        assert!(bx[itau].hi() < 1.5, "{:?}", bx[itau]);
    }

    #[test]
    fn solutions_never_lost() {
        // Soundness: the exact pair (x0, x0·e^{-τ}) survives contraction.
        let (cx, fc, [i0, it, itau]) = decay_setting();
        for x0v in [0.5, 1.0, 1.7] {
            for tauv in [0.2f64, 0.7, 1.4] {
                let mut bx = full_box(&cx);
                bx[i0] = Interval::new(0.4, 2.0);
                bx[it] = Interval::new(0.0, 3.0);
                bx[itau] = Interval::new(0.0, 1.5);
                let out = fc.contract(&mut bx);
                assert_ne!(out, Outcome::Empty);
                let xt_exact = x0v * (-tauv).exp();
                assert!(bx[i0].contains(x0v));
                assert!(bx[it].contains(xt_exact), "lost xt={xt_exact}");
                assert!(bx[itau].contains(tauv));
            }
        }
    }

    #[test]
    fn invariant_cuts_dwell_time() {
        // x' = -x from x0 = 1 with invariant x ≥ 0.5: x crosses 0.5 at
        // t = ln 2 ≈ 0.693, so requiring τ ≥ 1 is infeasible.
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let rhs = cx.parse("-x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        let inv_expr = cx.parse("x - 0.5").unwrap();
        let inv = Atom::new(inv_expr, RelOp::Ge);
        let x0 = cx.intern_var("x0");
        let xt = cx.intern_var("xt");
        let tau = cx.intern_var("tau");
        let fc = FlowContractor::new(&mut cx, &sys, vec![x0], vec![xt], tau, &[inv]);
        let mut bx = IBox::uniform(cx.num_vars(), Interval::ZERO);
        bx[x0.index()] = Interval::point(1.0);
        bx[xt.index()] = Interval::new(0.0, 2.0);
        bx[tau.index()] = Interval::new(1.0, 2.0);
        assert_eq!(fc.contract(&mut bx), Outcome::Empty);
        // With τ free, the dwell time gets capped near ln 2.
        let mut bx = IBox::uniform(cx.num_vars(), Interval::ZERO);
        bx[x0.index()] = Interval::point(1.0);
        bx[xt.index()] = Interval::new(0.0, 2.0);
        bx[tau.index()] = Interval::new(0.0, 2.0);
        assert_ne!(fc.contract(&mut bx), Outcome::Empty);
        assert!(
            bx[tau.index()].hi() < 1.0,
            "dwell must be capped near ln2: {:?}",
            bx[tau.index()]
        );
    }

    #[test]
    fn parameterized_flow_prunes_param_indirectly() {
        // x' = -k·x, x0 = 1, xt ≈ e⁻¹ at τ = 1 admits k ≈ 1; the flow
        // contractor prunes xt given the k-box, never k itself (HC4 atoms
        // would close the loop in a full solver).
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let _k = cx.intern_var("k");
        let rhs = cx.parse("-k*x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        let x0 = cx.intern_var("x0");
        let xt = cx.intern_var("xt");
        let tau = cx.intern_var("tau");
        let fc = FlowContractor::new(&mut cx, &sys, vec![x0], vec![xt], tau, &[]);
        let mut bx = IBox::uniform(cx.num_vars(), Interval::ZERO);
        let k = cx.var_id("k").unwrap();
        bx[k.index()] = Interval::new(0.9, 1.1);
        bx[x0.index()] = Interval::point(1.0);
        bx[xt.index()] = Interval::new(0.0, 1.0);
        bx[tau.index()] = Interval::point(1.0);
        let out = fc.contract(&mut bx);
        assert_ne!(out, Outcome::Empty);
        // xt must bracket e^{-k} for all k in the box but be far from 1.
        assert!(bx[xt.index()].contains((-0.9f64).exp()));
        assert!(bx[xt.index()].contains((-1.1f64).exp()));
        assert!(bx[xt.index()].hi() < 0.6);
    }

    #[test]
    fn zero_time_identifies_states() {
        let (cx, fc, [i0, it, itau]) = decay_setting();
        let mut bx = full_box(&cx);
        bx[i0] = Interval::new(1.0, 2.0);
        bx[it] = Interval::new(1.5, 5.0);
        bx[itau] = Interval::ZERO;
        let out = fc.contract(&mut bx);
        assert_ne!(out, Outcome::Empty);
        // xt ∩ x0 = [1.5, 2].
        assert!(bx[it].lo() >= 1.4 && bx[it].hi() <= 2.1, "{:?}", bx[it]);
    }

    #[test]
    fn unbounded_inputs_are_left_alone() {
        let (cx, fc, [i0, _, itau]) = decay_setting();
        let mut bx = full_box(&cx);
        bx[i0] = Interval::new(1.0, 2.0);
        bx[itau] = Interval::new(0.0, f64::INFINITY);
        assert_eq!(fc.contract(&mut bx), Outcome::Unchanged);
    }
}
