//! Whole-formula route: encode the mode choice per step as Boolean flags
//! guarding flow contractors and let DPLL(T) enumerate paths (ablation
//! against path enumeration; see benchmark E9).

use crate::encode::PathEncoding;
use crate::reach::{ReachOptions, ReachResult, ReachSpec};
use biocheck_dsmt::{DeltaSmt, FlagId, Fol};
use biocheck_hybrid::HybridAutomaton;
use biocheck_icp::DeltaResult;
use biocheck_interval::Interval;
use biocheck_ode::FlowContractor;

/// Decides the same question as [`crate::check_reach`] with a single
/// DPLL(T) query per path length: mode occupancy at each step is a
/// contractor flag, jumps are disjunctions over `(guard ∧ glue ∧ flags)`
/// branches, and the SAT core enumerates theory-consistent paths.
pub fn check_reach_whole(
    ha: &HybridAutomaton,
    spec: &ReachSpec,
    opts: &ReachOptions,
) -> ReachResult {
    assert_eq!(
        opts.state_bounds.len(),
        ha.dim(),
        "one state bound per state variable"
    );
    let mut any_unknown = false;
    for m in 0..=spec.k_max {
        match solve_depth(ha, spec, opts, m) {
            DeltaResult::DeltaSat(w) => {
                // The Boolean path is not directly exposed by the dsmt
                // witness; report the numeric content with an empty path.
                return ReachResult::DeltaSat(crate::reach::ReachWitness {
                    path: Vec::new(),
                    jumps: Vec::new(),
                    dwell_times: Vec::new(),
                    params: ha
                        .params
                        .iter()
                        .map(|&(v, _)| (ha.cx.var_name(v).to_string(), w.point[v.index()]))
                        .collect(),
                    param_box: ha
                        .params
                        .iter()
                        .map(|&(v, _)| (ha.cx.var_name(v).to_string(), w.boxx[v.index()]))
                        .collect(),
                    final_state: Vec::new(),
                    raw: w,
                });
            }
            DeltaResult::Unsat => {}
            DeltaResult::Unknown { .. } => any_unknown = true,
        }
    }
    if any_unknown {
        ReachResult::Unknown
    } else {
        ReachResult::Unsat
    }
}

fn solve_depth(
    ha: &HybridAutomaton,
    spec: &ReachSpec,
    opts: &ReachOptions,
    m: usize,
) -> DeltaResult {
    let n_steps = m + 1;
    let mut smt = DeltaSmt::new(ha.cx.clone(), opts.delta);
    smt.max_splits = opts.max_splits;
    smt.cancel = opts.cancel.clone();
    smt.deadline = opts.deadline;
    let enc = PathEncoding::allocate(smt.cx_mut(), &ha.states, n_steps);

    // Mode-occupancy flags: one flow contractor per (step, mode).
    let mut occupancy: Vec<Vec<FlagId>> = Vec::with_capacity(n_steps);
    for i in 0..n_steps {
        let mut row = Vec::with_capacity(ha.modes.len());
        for q in 0..ha.modes.len() {
            let sys = ha.flow_system(q);
            let fc = FlowContractor::new(
                smt.cx_mut(),
                &sys,
                enc.steps[i].entry.clone(),
                enc.steps[i].exit.clone(),
                enc.steps[i].tau,
                &ha.modes[q].invariants,
            )
            .with_step(opts.flow_step)
            .with_label(format!("flow@{i}:{}", ha.modes[q].name));
            row.push(smt.add_contractor(Box::new(fc)));
        }
        occupancy.push(row);
    }
    // A step dwells in exactly one mode: exclude co-occupancy.
    for row in &occupancy {
        smt.exclude_pairwise(row);
    }

    // Init: start mode flag + init atoms at step-0 entry.
    let init_atoms = enc.atoms_at_entry(smt.cx_mut(), &ha.states, &ha.init, 0);
    let mut init_conj: Vec<Fol> = init_atoms.into_iter().map(Fol::Atom).collect();
    init_conj.push(Fol::Flag(occupancy[0][ha.init_mode]));
    smt.assert(Fol::and(init_conj));

    // Steps: disjunction over jumps.
    for i in 0..m {
        let mut branches = Vec::new();
        for (ji, jump) in ha.jumps.iter().enumerate() {
            let mut conj = vec![
                Fol::Flag(occupancy[i][jump.from]),
                Fol::Flag(occupancy[i + 1][jump.to]),
            ];
            for a in enc.atoms_at_exit(smt.cx_mut(), &ha.states, &jump.guards.clone(), i) {
                conj.push(Fol::Atom(a));
            }
            for a in enc.glue_atoms(ha, smt.cx_mut(), ji, i) {
                conj.push(Fol::Atom(a));
            }
            branches.push(Fol::and(conj));
        }
        if branches.is_empty() {
            return DeltaResult::Unsat; // no jumps at all but m ≥ 1
        }
        smt.assert(Fol::or(branches));
    }

    // Goal at the final exit (optionally pinned to a mode).
    let goal_atoms = enc.atoms_at_exit(smt.cx_mut(), &ha.states, &spec.goal, m);
    let mut goal_conj: Vec<Fol> = goal_atoms.into_iter().map(Fol::Atom).collect();
    if let Some(q) = spec.goal_mode {
        goal_conj.push(Fol::Flag(occupancy[m][q]));
    }
    smt.assert(Fol::and(goal_conj));

    // Bounds.
    for &(v, range) in &ha.params {
        smt.bound_var(v, range);
    }
    for s in &enc.steps {
        for (d, &v) in s.entry.iter().enumerate() {
            smt.bound_var(v, opts.state_bounds[d]);
        }
        for (d, &v) in s.exit.iter().enumerate() {
            smt.bound_var(v, opts.state_bounds[d]);
        }
        smt.bound_var(s.tau, Interval::new(0.0, spec.time_bound));
    }
    smt.check()
}

#[cfg(test)]
mod tests {
    use super::*;
    use biocheck_expr::{Atom, RelOp};

    fn two_mode() -> HybridAutomaton {
        HybridAutomaton::parse_bha(
            r#"
            state x;
            mode rise { flow: x' = 1; jump to fall when x >= 5; }
            mode fall { flow: x' = -1; jump to rise when x <= 1; }
            init rise: x = 1;
            "#,
        )
        .unwrap()
    }

    fn opts() -> ReachOptions {
        ReachOptions {
            state_bounds: vec![Interval::new(-10.0, 10.0)],
            ..ReachOptions::new(0.05)
        }
    }

    #[test]
    fn whole_formula_zero_step() {
        let mut ha = two_mode();
        let e = ha.cx.parse("x - 4").unwrap();
        let spec = ReachSpec {
            goal_mode: None,
            goal: vec![Atom::new(e, RelOp::Ge)],
            k_max: 0,
            time_bound: 6.0,
        };
        assert!(check_reach_whole(&ha, &spec, &opts()).is_delta_sat());
    }

    #[test]
    fn whole_formula_one_jump() {
        let mut ha = two_mode();
        let e = ha.cx.parse("3 - x").unwrap(); // x ≤ 3
        let spec = ReachSpec {
            goal_mode: Some(1),
            goal: vec![Atom::new(e, RelOp::Ge)],
            k_max: 1,
            time_bound: 6.0,
        };
        let r = check_reach_whole(&ha, &spec, &opts());
        assert!(r.is_delta_sat(), "{r:?}");
        // Parameter list empty but witness numeric content present.
        assert!(r.witness().unwrap().params.is_empty());
    }

    #[test]
    fn whole_formula_unsat() {
        let mut ha = two_mode();
        let e = ha.cx.parse("x - 20").unwrap();
        let spec = ReachSpec {
            goal_mode: None,
            goal: vec![Atom::new(e, RelOp::Ge)],
            k_max: 1,
            time_bound: 6.0,
        };
        assert!(check_reach_whole(&ha, &spec, &opts()).is_unsat());
    }

    #[test]
    fn agrees_with_path_enumeration() {
        let mut ha = two_mode();
        for (goal_src, op, k, mode) in [
            ("x - 4", RelOp::Ge, 0usize, None),
            ("3 - x", RelOp::Ge, 1, Some(1usize)),
            ("x - 20", RelOp::Ge, 1, None),
        ] {
            let e = ha.cx.parse(goal_src).unwrap();
            let spec = ReachSpec {
                goal_mode: mode,
                goal: vec![Atom::new(e, op)],
                k_max: k,
                time_bound: 6.0,
            };
            let a = crate::check_reach(&ha, &spec, &opts()).is_delta_sat();
            let b = check_reach_whole(&ha, &spec, &opts()).is_delta_sat();
            assert_eq!(a, b, "routes disagree on {goal_src}");
        }
    }
}
