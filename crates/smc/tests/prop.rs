//! Property tests: parallel SMC with a fixed seed reproduces the
//! sequential estimate bit-for-bit — sample count, verdict, and
//! confidence interval — for arbitrary seeds and sample counts.

use biocheck_bltl::Bltl;
use biocheck_expr::{Atom, Context, RelOp};
use biocheck_ode::OdeSystem;
use biocheck_smc::{
    par_bayes_estimate, par_chernoff_estimate, par_estimate, par_sprt, seq_bayes_estimate,
    seq_chernoff_estimate, seq_estimate, seq_sprt, Dist, TraceSampler,
};
use proptest::prelude::*;

/// Decay from x₀ ~ U[0.5, 1.5]; F≤0.01 (x ≥ 1) holds iff x₀ ≥ ~1 ⇒ p ≈ ½.
fn threshold_sampler() -> TraceSampler {
    let mut cx = Context::new();
    let x = cx.intern_var("x");
    let rhs = cx.parse("-x").unwrap();
    let sys = OdeSystem::new(vec![x], vec![rhs]);
    let e = cx.parse("x - 1").unwrap();
    let prop = Bltl::eventually(0.01, Bltl::Prop(Atom::new(e, RelOp::Ge)));
    TraceSampler::new(cx, &sys, vec![Dist::Uniform(0.5, 1.5)], vec![], prop, 0.01)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn estimate_parallel_equals_sequential(seed in 0..u64::MAX / 2, n in 1..200usize) {
        let s = threshold_sampler();
        let p_par = par_estimate(&s, seed, n);
        let p_seq = seq_estimate(&s, seed, n);
        prop_assert!(p_par.to_bits() == p_seq.to_bits(),
            "seed {seed}, n {n}: {p_par} != {p_seq}");
    }

    #[test]
    fn chernoff_parallel_equals_sequential(seed in 0..u64::MAX / 2) {
        let s = threshold_sampler();
        let a = par_chernoff_estimate(&s, seed, 0.15, 0.2);
        let b = seq_chernoff_estimate(&s, seed, 0.15, 0.2);
        prop_assert!(a.p_hat.to_bits() == b.p_hat.to_bits());
        prop_assert!(a.samples == b.samples);
        prop_assert!(a.half_width == b.half_width && a.confidence == b.confidence);
    }

    #[test]
    fn bayes_parallel_equals_sequential(seed in 0..u64::MAX / 2) {
        let s = threshold_sampler();
        let a = par_bayes_estimate(&s, seed, 0.09, 0.9, 2_000);
        let b = seq_bayes_estimate(&s, seed, 0.09, 0.9, 2_000);
        prop_assert!(a.p_hat.to_bits() == b.p_hat.to_bits(),
            "seed {seed}: {} != {}", a.p_hat, b.p_hat);
        prop_assert!(a.samples == b.samples,
            "seed {seed}: {} vs {} samples", a.samples, b.samples);
    }

    #[test]
    fn sprt_parallel_equals_sequential(seed in 0..u64::MAX / 2) {
        let s = threshold_sampler();
        // p ≈ 0.5 against θ = 0.8: H1 accepted after a short run.
        let a = par_sprt(&s, seed, 0.8, 0.05, 0.05, 0.05, 5_000);
        let b = seq_sprt(&s, seed, 0.8, 0.05, 0.05, 0.05, 5_000);
        prop_assert!(a.outcome == b.outcome, "seed {seed}");
        prop_assert!(a.samples == b.samples, "seed {seed}: {} vs {}", a.samples, b.samples);
        prop_assert!(a.p_hat.to_bits() == b.p_hat.to_bits());
    }
}
