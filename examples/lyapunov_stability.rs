//! Sec. IV-C: Lyapunov stability analysis of biochemical networks via
//! CEGIS over ∃∀ δ-decision problems.
//!
//! Run with `cargo run --release --example lyapunov_stability`.

use biocheck::core::verify_stability;
use biocheck::interval::Interval;
use biocheck::lyapunov::LyapunovSynthesizer;
use biocheck::models::classics;

fn main() {
    // 1. Kinetic proofreading chain (McKeithan): linear, globally stable.
    let kp = classics::kinetic_proofreading(2, 1.0, 0.5, 1.0);
    let report = verify_stability(
        &kp.cx,
        &kp.sys,
        &[Interval::new(0.0, 2.0), Interval::new(0.0, 2.0)],
        0.1,
        0.8,
    )
    .expect("proofreading chain is stable");
    println!("kinetic proofreading:");
    println!("  equilibrium ≈ {:?}", report.equilibrium);
    println!(
        "  V(y) = {}  (certified: {})",
        report.lyapunov, report.certified
    );

    // 2. Goldbeter–Koshland (ERK-like) switch: monostable nonlinear.
    let gk = classics::goldbeter_koshland();
    let report = verify_stability(&gk.cx, &gk.sys, &[Interval::new(0.05, 0.95)], 0.05, 0.25)
        .expect("GK switch is monostable");
    println!("Goldbeter–Koshland switch:");
    println!("  equilibrium ≈ {:.4}", report.equilibrium[0]);
    println!(
        "  V(y) = {}  (certified: {})",
        report.lyapunov, report.certified
    );

    // 3. A raw CEGIS run on a damped oscillator, showing the iterations.
    let mut cx = biocheck::expr::Context::new();
    let x = cx.intern_var("x");
    let v = cx.intern_var("v");
    let fx = cx.parse("v").unwrap();
    let fv = cx.parse("-x - v").unwrap();
    let sys = biocheck::ode::OdeSystem::new(vec![x, v], vec![fx, fv]);
    let mut syn = LyapunovSynthesizer::quadratic(cx, &sys, 0.2, 1.0);
    let r = syn.run(40).expect("certificate exists");
    println!(
        "damped oscillator: V = {} after {} CEGIS iterations",
        r.v_text, r.iterations
    );
}
