//! Eviction edge cases for the result cache — and the end-to-end
//! guarantee that a model re-registered with a different fingerprint
//! can never be served a stale report.

use biocheck_serve::server::{ServeConfig, ServeCore};
use biocheck_serve::wire::{
    BudgetSpec, DistSpec, MethodSpec, ModelSource, PropSpec, QueryRequest, QuerySpec, SmcSpecWire,
};
use biocheck_serve::Json;
use biocheck_serve::ResultCache;

#[test]
fn capacity_zero_is_a_correct_noop() {
    let cache: ResultCache<u32> = ResultCache::new(0);
    assert!(!cache.insert("k", 1, 10), "nothing fits in 0 bytes");
    assert_eq!(cache.get("k"), None);
    let s = cache.stats();
    assert_eq!((s.entries, s.bytes, s.inserts), (0, 0, 0));
    assert_eq!(s.rejected, 1);
    assert_eq!(s.misses, 1);
    assert_eq!(s.evictions, 0, "rejection is not eviction");
}

#[test]
fn capacity_one_admits_only_one_byte_entries() {
    let cache: ResultCache<u32> = ResultCache::new(1);
    assert!(!cache.insert("a", 1, 2), "2 bytes cannot fit");
    assert!(cache.insert("a", 1, 1));
    assert_eq!(cache.get("a"), Some(1));
    // A second 1-byte entry evicts the first.
    assert!(cache.insert("b", 2, 1));
    assert_eq!(cache.get("a"), None);
    assert_eq!(cache.get("b"), Some(2));
    let s = cache.stats();
    assert_eq!((s.entries, s.bytes, s.evictions, s.rejected), (1, 1, 1, 1));
}

#[test]
fn byte_pressure_evicts_lru_first_and_exactly_enough() {
    let cache: ResultCache<u32> = ResultCache::new(100);
    for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
        assert!(cache.insert(*k, i as u32, 25));
    }
    // Touch order: a is oldest untouched ⇒ after touching a, b is LRU.
    assert_eq!(cache.get("a"), Some(0));
    // 50-byte insert needs two evictions: b then c (LRU order), d and a
    // survive.
    assert!(cache.insert("e", 9, 50));
    assert_eq!(cache.get("b"), None);
    assert_eq!(cache.get("c"), None);
    assert_eq!(cache.get("a"), Some(0));
    assert_eq!(cache.get("d"), Some(3));
    assert_eq!(cache.get("e"), Some(9));
    assert_eq!(cache.stats().evictions, 2);
    assert_eq!(cache.stats().bytes, 100);
}

#[test]
fn growing_replacement_rebalances() {
    let cache: ResultCache<u32> = ResultCache::new(10);
    assert!(cache.insert("a", 1, 4));
    assert!(cache.insert("b", 2, 4));
    // Replace b with a bigger value: a must be evicted to fit.
    assert!(cache.insert("b", 3, 8));
    assert_eq!(cache.get("a"), None);
    assert_eq!(cache.get("b"), Some(3));
    assert_eq!(cache.stats().bytes, 8);
}

#[test]
fn rejected_replacement_drops_the_stale_value() {
    // Re-inserting a key with an over-budget cost cannot store the new
    // value — but it must not keep serving the old one either: the
    // caller declared it replaced.
    let cache: ResultCache<u32> = ResultCache::new(10);
    assert!(cache.insert("k", 1, 5));
    assert!(!cache.insert("k", 2, 25), "25 bytes cannot fit in 10");
    assert_eq!(cache.get("k"), None, "stale value must be gone");
    let s = cache.stats();
    assert_eq!((s.entries, s.bytes, s.rejected), (0, 0, 1));
}

fn decay_request(rhs_threshold: f64) -> QueryRequest {
    QueryRequest {
        model: "m".into(),
        id: None,
        seed: 5,
        budget: BudgetSpec::default(),
        query: QuerySpec::Estimate {
            smc: SmcSpecWire {
                init: vec![DistSpec::Uniform(0.5, 1.5)],
                params: vec![],
                property: PropSpec::Eventually {
                    bound: 0.01,
                    inner: Box::new(PropSpec::Prop {
                        expr: format!("x - {rhs_threshold}"),
                        rel: biocheck_expr::RelOp::Ge,
                    }),
                },
                t_end: 0.01,
            },
            method: MethodSpec::Fixed { n: 80 },
        },
        trace: false,
    }
}

/// Re-registering a model with a *different* definition must never let
/// an old memoized report leak into answers for the new model — the
/// fingerprint in the key rotates AND the old entries are purged.
#[test]
fn reregistration_never_serves_stale_reports() {
    let core = ServeCore::new(ServeConfig::default());
    let v1 = ModelSource {
        states: vec![("x".into(), "-x".into())],
        consts: vec![],
    };
    core.register("m", &v1).unwrap();
    let request = decay_request(1.0);
    let (r1, cached) = core.run_query(&request).unwrap();
    assert!(!cached);
    let (r1_hit, cached) = core.run_query(&request).unwrap();
    assert!(cached);
    assert_eq!(r1.fingerprint(), r1_hit.fingerprint());

    // New dynamics under the same name: x decays 100× faster, so
    // F≤0.01(x ≥ 1) has a different probability.
    let v2 = ModelSource {
        states: vec![("x".into(), "-100*x".into())],
        consts: vec![],
    };
    core.register("m", &v2).unwrap();
    assert!(core.cache_stats().purged > 0, "old results purged");
    let (r2, cached) = core.run_query(&request).unwrap();
    assert!(!cached, "changed model must recompute");
    // Same request text, different dynamics ⇒ the reports may disagree;
    // what matters is that r2 equals a fresh single-model computation.
    let fresh = ServeCore::new(ServeConfig::default());
    fresh.register("m", &v2).unwrap();
    let (expected, _) = fresh.run_query(&request).unwrap();
    assert_eq!(r2.fingerprint(), expected.fingerprint());

    // And re-registering the SAME definition keeps the memoized results.
    core.register("m", &v2).unwrap();
    let (_r2_hit, cached) = core.run_query(&request).unwrap();
    assert!(cached, "identical re-registration keeps the cache");
}

/// A tiny cache byte budget turns memoization off gracefully: queries
/// still answer correctly, the second run just recomputes.
#[test]
fn zero_budget_core_still_serves_correctly() {
    let core = ServeCore::new(ServeConfig {
        cache_bytes: 0,
        concurrency: 1,
        ..ServeConfig::default()
    });
    let v1 = ModelSource {
        states: vec![("x".into(), "-x".into())],
        consts: vec![],
    };
    core.register("m", &v1).unwrap();
    let request = decay_request(1.0);
    let (a, cached_a) = core.run_query(&request).unwrap();
    let (b, cached_b) = core.run_query(&request).unwrap();
    assert!(!cached_a && !cached_b);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(core.cache_stats().entries, 0);
    assert!(core.cache_stats().rejected >= 2);
    // Stats payload stays well-formed.
    let stats = core.stats_json();
    assert_eq!(
        stats.get("cache").and_then(|c| c.get("entries")),
        Some(&Json::Num(0.0))
    );
}
