//! The cost-aware LRU result cache: whole-`Report` memoization with
//! byte-budgeted eviction.
//!
//! Seeded queries under count-only budgets are pure functions of
//! `(model fingerprint, canonical query, seed, caps)` — see
//! [`Budget::canonical_caps`](biocheck_engine::Budget::canonical_caps) —
//! so their reports can be handed back verbatim. This cache stores
//! values behind `Arc` keyed by that tuple (one pre-joined string),
//! charges each entry its approximate resident cost in bytes, and
//! evicts from the least-recently-used end until the configured byte
//! budget holds. A value whose cost alone exceeds the budget is simply
//! not admitted (counted in [`CacheStats::rejected`]); a budget of 0
//! degenerates to a correct no-op cache.
//!
//! The LRU list is intrusive over a slab (`prev`/`next` indices), so
//! `get`/`insert`/eviction are all O(1) outside the `HashMap` lookups.

pub mod persist;

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

const NONE: usize = usize::MAX;

/// Monotone counters describing the cache's lifetime behavior, plus a
/// snapshot of its current occupancy.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Values admitted.
    pub inserts: usize,
    /// Entries evicted to make room (byte pressure) — replacing a key's
    /// value in place is an insert, not an eviction.
    pub evictions: usize,
    /// Values refused because their cost alone exceeds the byte budget.
    pub rejected: usize,
    /// Entries purged by [`ResultCache::purge_prefix`] (model
    /// re-registration).
    pub purged: usize,
    /// Current resident entries.
    pub entries: usize,
    /// Current resident cost in bytes.
    pub bytes: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups, 0.0 before any lookup. The
    /// operator-facing hit ratio in `stats`/`metrics` replies.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot<V> {
    key: String,
    value: V,
    cost: usize,
    prev: usize,
    next: usize,
}

struct Inner<V> {
    map: HashMap<String, usize>,
    slots: Vec<Option<Slot<V>>>,
    free: Vec<usize>,
    /// Most-recently-used slot index.
    head: usize,
    /// Least-recently-used slot index.
    tail: usize,
    bytes: usize,
    stats: CacheStats,
}

/// A byte-budgeted LRU cache from pre-joined key strings to cloneable
/// values (the serving layer stores `Arc<Report>`). All methods take
/// `&self`; the cache is internally locked and shared freely across
/// threads.
pub struct ResultCache<V> {
    capacity_bytes: usize,
    inner: Mutex<Inner<V>>,
}

impl<V: Clone> ResultCache<V> {
    /// Creates a cache that holds at most `capacity_bytes` of accounted
    /// cost. A capacity of 0 (or any capacity smaller than every entry)
    /// never stores anything and never errors.
    pub fn new(capacity_bytes: usize) -> ResultCache<V> {
        ResultCache {
            capacity_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                head: NONE,
                tail: NONE,
                bytes: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&self, key: &str) -> Option<V> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.map.get(key).copied() {
            Some(idx) => {
                inner.stats.hits += 1;
                inner.unlink(idx);
                inner.push_front(idx);
                Some(inner.slot(idx).value.clone())
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Admits `value` under `key` at the given accounted cost, evicting
    /// least-recently-used entries until the byte budget holds. Returns
    /// `false` when the value alone exceeds the budget (not stored —
    /// and if the key held an older value, that value is dropped too:
    /// the caller asked to replace it, so serving it again would be
    /// stale). Re-inserting an existing key replaces its value (no
    /// eviction is counted for the replacement itself).
    pub fn insert(&self, key: impl Into<String>, value: V, cost: usize) -> bool {
        let key = key.into();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if cost > self.capacity_bytes {
            if let Some(idx) = inner.map.get(&key).copied() {
                inner.evict(idx);
            }
            inner.stats.rejected += 1;
            return false;
        }
        if let Some(idx) = inner.map.get(&key).copied() {
            // Replace in place, then rebalance below.
            inner.bytes -= inner.slot(idx).cost;
            inner.bytes += cost;
            {
                let slot = inner.slots[idx].as_mut().expect("live slot"); // lint: infallible
                slot.value = value;
                slot.cost = cost;
            }
            inner.unlink(idx);
            inner.push_front(idx);
            inner.stats.inserts += 1;
        } else {
            while inner.bytes + cost > self.capacity_bytes {
                let victim = inner.tail;
                debug_assert_ne!(victim, NONE, "bytes > 0 implies a tail");
                inner.evict(victim);
                inner.stats.evictions += 1;
            }
            let idx = inner.alloc(Slot {
                key: key.clone(),
                value,
                cost,
                prev: NONE,
                next: NONE,
            });
            inner.map.insert(key, idx);
            inner.bytes += cost;
            inner.push_front(idx);
            inner.stats.inserts += 1;
        }
        // A replacement may have grown the entry past the budget; evict
        // from the LRU end (never the just-touched entry, which is at
        // the head and also the last possible victim).
        while inner.bytes > self.capacity_bytes {
            let victim = inner.tail;
            inner.evict(victim);
            inner.stats.evictions += 1;
        }
        true
    }

    /// Drops every entry whose key starts with `prefix` (all results of
    /// a re-registered model's old fingerprint). Returns the number of
    /// entries removed.
    pub fn purge_prefix(&self, prefix: &str) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let victims: Vec<usize> = inner
            .map
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &idx)| idx)
            .collect();
        let n = victims.len();
        for idx in victims {
            inner.evict(idx);
        }
        inner.stats.purged += n;
        n
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            ..inner.stats
        }
    }
}

impl<V> Inner<V> {
    fn slot(&self, idx: usize) -> &Slot<V> {
        self.slots[idx].as_ref().expect("live slot") // lint: infallible
    }

    fn alloc(&mut self, slot: Slot<V>) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(slot);
                idx
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        }
    }

    /// Detaches `idx` from the LRU list (it stays allocated).
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slot(idx);
            (s.prev, s.next)
        };
        match prev {
            NONE => self.head = next,
            p => self.slots[p].as_mut().expect("live slot").next = next, // lint: infallible
        }
        match next {
            NONE => self.tail = prev,
            n => self.slots[n].as_mut().expect("live slot").prev = prev, // lint: infallible
        }
    }

    /// Attaches `idx` at the most-recently-used end.
    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let slot = self.slots[idx].as_mut().expect("live slot"); // lint: infallible
            slot.prev = NONE;
            slot.next = old_head;
        }
        match old_head {
            NONE => self.tail = idx,
            h => self.slots[h].as_mut().expect("live slot").prev = idx, // lint: infallible
        }
        self.head = idx;
    }

    /// Removes `idx` entirely: out of the list, the map, and the byte
    /// account.
    fn evict(&mut self, idx: usize) {
        self.unlink(idx);
        let slot = self.slots[idx].take().expect("live slot"); // lint: infallible
        self.map.remove(&slot.key);
        self.bytes -= slot.cost;
        self.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_in_lru_order<V: Clone>(cache: &ResultCache<V>) -> Vec<String> {
        let inner = cache.inner.lock().unwrap();
        let mut out = Vec::new();
        let mut idx = inner.head;
        while idx != NONE {
            let s = inner.slot(idx);
            out.push(s.key.clone());
            idx = s.next;
        }
        out
    }

    #[test]
    fn lru_order_and_eviction() {
        let cache = ResultCache::new(30);
        assert!(cache.insert("a", 1, 10));
        assert!(cache.insert("b", 2, 10));
        assert!(cache.insert("c", 3, 10));
        // Touch "a": it becomes MRU, so "b" is now the LRU victim.
        assert_eq!(cache.get("a"), Some(1));
        assert_eq!(keys_in_lru_order(&cache), ["a", "c", "b"]);
        assert!(cache.insert("d", 4, 10));
        assert_eq!(cache.get("b"), None, "b evicted under byte pressure");
        assert_eq!(cache.get("a"), Some(1));
        assert_eq!(cache.get("c"), Some(3));
        assert_eq!(cache.get("d"), Some(4));
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes, s.evictions), (3, 30, 1));
    }

    #[test]
    fn one_big_insert_evicts_many() {
        let cache = ResultCache::new(30);
        for (k, c) in [("a", 10), ("b", 10), ("c", 10)] {
            assert!(cache.insert(k, 0, c));
        }
        assert!(cache.insert("big", 9, 25));
        assert_eq!(cache.get("big"), Some(9));
        // a and b (oldest) evicted; c survives at 5 remaining bytes? No:
        // 25 + 10 > 30, so all three went.
        assert_eq!(cache.stats().evictions, 3);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn replacement_updates_cost_without_counting_eviction() {
        let cache = ResultCache::new(20);
        assert!(cache.insert("k", 1, 5));
        assert!(cache.insert("k", 2, 9));
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes, s.evictions, s.inserts), (1, 9, 0, 2));
        assert_eq!(cache.get("k"), Some(2));
    }

    #[test]
    fn purge_prefix_removes_only_matching() {
        let cache = ResultCache::new(100);
        cache.insert("m1|q1", 1, 5);
        cache.insert("m1|q2", 2, 5);
        cache.insert("m2|q1", 3, 5);
        assert_eq!(cache.purge_prefix("m1|"), 2);
        assert_eq!(cache.get("m1|q1"), None);
        assert_eq!(cache.get("m1|q2"), None);
        assert_eq!(cache.get("m2|q1"), Some(3));
        assert_eq!(cache.stats().purged, 2);
    }
}
