//! Performance workloads behind `BENCH_<n>.json`.
//!
//! Since PR 4 every workload runs through the engine's
//! `Session`/`Query`/`Report` API. The three SMC workloads draw
//! Bernoulli samples (ODE simulation + streaming BLTL monitoring) from
//! the paper's case-study models, once in sequential mode and once on
//! the rayon-parallel path, with the same master seed; the engine forks
//! a per-sample RNG from the seed, so the two reports must agree
//! **bit-for-bit** — the `deterministic` field records that
//! fingerprint check, and `speedup` the wall-clock ratio.
//!
//! The `engine_batch` workload measures the session cache: the same
//! 12-query batch (a PSA-threshold sweep on the prostate model) timed
//! against a cold session (constructed inside the timed region, every
//! plan compiled on first use) and against a warm session (artifact
//! cache already populated). Its `samples` column counts queries, its
//! `samples_per_sec` is queries/sec, `sequential` holds the cold
//! timing, `parallel` the warm timing, and `speedup` the warm/cold
//! ratio; `deterministic` asserts cold and warm reports fingerprint
//! identically (cached artifacts change no numbers).

use biocheck_bltl::Bltl;
use biocheck_engine::{EstimateMethod, Query, Report, Session, SmcSpec, Value};
use biocheck_expr::{Atom, RelOp};
use biocheck_models::{cardiac, prostate, radiation, OdeModel};
use biocheck_ode::OdeSystem;
use biocheck_serve::server::{ServeConfig, ServeCore};
use biocheck_serve::wire::{
    BudgetSpec, DistSpec, MethodSpec, ModelSource, PropSpec, QueryRequest, QuerySpec, SmcSpecWire,
};
use biocheck_smc::Dist;
use std::time::Instant;

/// Timings for one workload in one execution mode.
#[derive(Clone, Copy, Debug)]
pub struct ModeTiming {
    /// Wall-clock seconds for the whole sample batch.
    pub wall_seconds: f64,
    /// Samples per second.
    pub samples_per_sec: f64,
}

/// Per-request latency percentiles of the serving workload, read from
/// the `ServeCore`'s own phase histograms (the same ones the daemon's
/// `stats`/`metrics` ops expose), in microseconds. `hit_*` covers
/// warm memoized replies, `miss_*` the cold computing pass.
#[derive(Clone, Copy, Debug)]
pub struct LatencySummary {
    /// Median end-to-end latency of a cache-hit reply.
    pub hit_p50_us: f64,
    /// 99th-percentile end-to-end latency of a cache-hit reply.
    pub hit_p99_us: f64,
    /// Median end-to-end latency of a computed (miss) reply.
    pub miss_p50_us: f64,
    /// 99th-percentile end-to-end latency of a computed (miss) reply.
    pub miss_p99_us: f64,
}

/// Pool-width scaling of the parallel SMC path, measured in
/// single-workload subprocesses (`pool_scaling` only): the vendored
/// rayon pool fixes its width at first use from `BIOCHECK_THREADS`, so
/// each width needs its own process.
#[derive(Clone, Copy, Debug)]
pub struct ScalingSummary {
    /// Samples/sec with a 1-thread (fully inline) pool.
    pub t1_samples_per_sec: f64,
    /// Samples/sec with a 2-thread pool.
    pub t2_samples_per_sec: f64,
    /// Samples/sec with an 8-thread pool.
    pub t8_samples_per_sec: f64,
}

/// One benchmark workload: sequential vs parallel SMC sampling, or
/// cold- vs warm-cache batched querying (`engine_batch`,
/// `serve_throughput`), or the subprocess pool sweep (`pool_scaling`).
#[derive(Clone, Debug)]
pub struct PerfWorkload {
    /// Workload name (`smc_prostate`, `smc_cardiac`, `smc_radiation`,
    /// `icp_pave_ring`, `engine_batch`, `serve_throughput`,
    /// `pool_scaling`).
    pub name: String,
    /// Number of Bernoulli samples drawn per mode (queries per batch
    /// for `engine_batch`).
    pub samples: usize,
    /// Master seed used by both modes.
    pub seed: u64,
    /// Sequential-path timing (cold-cache timing for `engine_batch`).
    pub sequential: ModeTiming,
    /// Parallel-path timing (warm-cache timing for `engine_batch`).
    pub parallel: ModeTiming,
    /// The satisfaction estimate (identical between modes by design).
    pub p_hat: f64,
    /// Did both modes produce bit-identical reports?
    pub deterministic: bool,
    /// `sequential.wall_seconds / parallel.wall_seconds`.
    pub speedup: f64,
    /// Mean integration samples per draw (seed-deterministic; 0 for
    /// non-SMC workloads). Shrinks when streaming verdicts cut
    /// trajectories short.
    pub avg_steps: f64,
    /// Fraction of draws whose verdict decided before the time horizon
    /// (seed-deterministic; 0 for non-SMC workloads).
    pub early_stop_rate: f64,
    /// Serving-layer latency percentiles (`serve_throughput` only;
    /// `None` elsewhere — the field is absent from their JSON rows).
    pub latency: Option<LatencySummary>,
    /// Pool-width throughput sweep (`pool_scaling` only; `None`
    /// elsewhere — the field is absent from their JSON rows).
    pub scaling: Option<ScalingSummary>,
}

/// Prostate CAS therapy: P(PSA = x + y stays below 18 for 100 days) over
/// noisy initial tumor burden and androgen level. The threshold sits
/// inside the initial-PSA range, so p is strictly between 0 and 1 and the
/// parallel/sequential bit-for-bit check is non-trivial.
pub fn prostate_workload() -> (Session, SmcSpec) {
    let p = prostate::PatientParams::default();
    let mut m = prostate::cas_model(&p);
    let psa_ok = m.cx.parse("18 - (x + y)").unwrap();
    let spec = SmcSpec {
        init: vec![
            Dist::Uniform(10.0, 20.0),
            Dist::Uniform(0.05, 0.2),
            Dist::Uniform(10.0, 14.0),
        ],
        params: vec![],
        property: Bltl::globally(100.0, Bltl::Prop(Atom::new(psa_ok, RelOp::Ge))),
        t_end: 100.0,
    };
    (Session::new(&m), spec)
}

/// Fenton–Karma cardiac cell: P(an action potential fires within 30 time
/// units) over a random sustained stimulus current.
pub fn cardiac_workload() -> (Session, SmcSpec) {
    let mut m = cardiac::fenton_karma();
    let stim = m.cx.var_id("I_stim").unwrap();
    let fires = m.cx.parse("u - 0.8").unwrap();
    let spec = SmcSpec {
        init: vec![
            Dist::Uniform(0.0, 0.05),
            Dist::Uniform(0.9, 1.0),
            Dist::Uniform(0.9, 1.0),
        ],
        params: vec![(stim, Dist::Uniform(0.0, 0.4))],
        property: Bltl::eventually(30.0, Bltl::Prop(Atom::new(fires, RelOp::Ge))),
        t_end: 30.0,
    };
    (Session::new(&m), spec)
}

/// Radiation-damaged cell (untreated live mode): P(RIP3 commitment —
/// rip3 ≥ 1 — within 20 hours) over noisy initial lipid oxidation.
pub fn radiation_workload() -> (Session, SmcSpec) {
    let ha = radiation::tbi_automaton();
    let live = ha.mode_by_name("0").unwrap();
    let sys = OdeSystem::new(ha.states.clone(), ha.modes[live].rhs.clone());
    let mut cx = ha.cx.clone();
    let committed = cx.parse("rip3 - 1").unwrap();
    let nominal = radiation::tbi_init();
    let mut init: Vec<Dist> = nominal.into_iter().map(Dist::Point).collect();
    init[0] = Dist::Uniform(0.1, 0.3); // clox
    let spec = SmcSpec {
        init,
        params: vec![],
        property: Bltl::eventually(20.0, Bltl::Prop(Atom::new(committed, RelOp::Ge))),
        t_end: 20.0,
    };
    (Session::from_parts(cx, sys), spec)
}

/// Timing repetitions per mode; the fastest run is reported. The
/// minimum is the standard noise-robust wall-clock estimator — outliers
/// from scheduler preemption only ever slow a run down — and it is what
/// keeps the CI regression gate from tripping on machine jitter.
const REPEATS: usize = 5;

/// Runs `f` [`REPEATS`] times and returns (fastest wall seconds, last result).
fn best_of<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPEATS {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.expect("REPEATS > 0"))
}

/// Machine-speed calibration: iterations/sec of a fixed, deterministic
/// integer spin loop (best of `REPEATS` runs). Recorded alongside the
/// workloads in `BENCH_<n>.json` so the regression gate can compare
/// throughput *relative to the measuring machine's speed* instead of
/// absolute samples/sec — a baseline committed from a fast laptop then
/// gates a slower CI runner fairly, and vice versa.
pub fn calibration_score() -> f64 {
    const ITERS: u64 = 20_000_000;
    let mut best = f64::INFINITY;
    for rep in 0..REPEATS as u64 {
        // The seed varies per repetition and the result is consumed
        // inside the timed region: the optimizer can neither hoist the
        // loop out of the repeat loop nor fold the LCG chain, so every
        // repetition executes the full dependency chain.
        let seed = std::hint::black_box(rep);
        let t = Instant::now();
        let mut acc = seed;
        for i in 0..ITERS {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        best = best.min(t.elapsed().as_secs_f64());
    }
    ITERS as f64 / best
}

fn run_workload(
    name: &str,
    session: &Session,
    smc: &SmcSpec,
    samples: usize,
    seed: u64,
) -> PerfWorkload {
    let query = Query::Estimate {
        smc: smc.clone(),
        method: EstimateMethod::Fixed { n: samples },
    };
    // Populate the artifact cache outside the timed region (one-sample
    // query), mirroring the pre-engine benchmark where the sampler was
    // constructed before timing started.
    let _ = session
        .query(Query::Estimate {
            smc: smc.clone(),
            method: EstimateMethod::Fixed { n: 1 },
        })
        .seed(seed)
        .sequential()
        .run()
        .expect("valid workload");
    let (seq_secs, seq_report) = best_of(|| {
        session
            .query(query.clone())
            .seed(seed)
            .sequential()
            .run()
            .expect("valid workload")
    });
    let (par_secs, par_report) = best_of(|| {
        session
            .query(query.clone())
            .seed(seed)
            .run()
            .expect("valid workload")
    });
    let Value::Estimate(est) = &par_report.value else {
        unreachable!("estimate query returns an estimate");
    };
    PerfWorkload {
        name: name.to_string(),
        samples,
        seed,
        sequential: ModeTiming {
            wall_seconds: seq_secs,
            samples_per_sec: samples as f64 / seq_secs,
        },
        parallel: ModeTiming {
            wall_seconds: par_secs,
            samples_per_sec: samples as f64 / par_secs,
        },
        p_hat: est.p_hat,
        deterministic: par_report.fingerprint() == seq_report.fingerprint(),
        speedup: seq_secs / par_secs,
        avg_steps: par_report.provenance.avg_steps,
        early_stop_rate: par_report.provenance.early_stop_rate,
        latency: None,
        scaling: None,
    }
}

/// Branch-and-prune paving of the ring `0.25 ≤ x² + y² ≤ 1`, sequential
/// vs parallel. `samples` reports boxes classified, `p_hat` the fraction
/// of the initial box area proven inside the ring, and `deterministic`
/// whether both modes produced the same paving (box counts and measure).
pub fn icp_pave_workload() -> PerfWorkload {
    use biocheck_expr::Context;
    use biocheck_icp::BranchAndPrune;
    use biocheck_interval::{IBox, Interval};

    let mut cx = Context::new();
    let lo = cx.parse("x^2 + y^2 - 0.25").unwrap();
    let hi = cx.parse("x^2 + y^2 - 1").unwrap();
    let atoms = vec![Atom::new(lo, RelOp::Ge), Atom::new(hi, RelOp::Le)];
    let init = IBox::uniform(2, Interval::new(-1.5, 1.5));
    // ε = 0.005 ⇒ ~10k boxes, ~7 ms per paving: long enough that the
    // samples/sec figure is stable against scheduler jitter.
    let mut solver = BranchAndPrune::new(0.005);
    solver.eps = 0.005;
    solver.max_splits = 200_000;

    let seq_solver = solver.clone().sequential();
    let (seq_secs, seq) = best_of(|| seq_solver.pave(&cx, &atoms, &init));
    let (par_secs, par) = best_of(|| solver.pave(&cx, &atoms, &init));

    let boxes = par.sat.len() + par.undecided.len();
    let same_counts = seq.sat.len() == par.sat.len() && seq.undecided.len() == par.undecided.len();
    // Box sets are identical; vec order (and hence float summation
    // order) differs between modes, so compare measures with a tolerance.
    let same_measure =
        (seq.sat_measure() - par.sat_measure()).abs() <= 1e-9 * seq.sat_measure().max(1.0);
    let init_area = 3.0 * 3.0;
    let sat_area: f64 = par.sat.iter().map(|b| b[0].width() * b[1].width()).sum();
    PerfWorkload {
        name: "icp_pave_ring".to_string(),
        samples: boxes,
        seed: 0,
        sequential: ModeTiming {
            wall_seconds: seq_secs,
            samples_per_sec: boxes as f64 / seq_secs,
        },
        parallel: ModeTiming {
            wall_seconds: par_secs,
            samples_per_sec: boxes as f64 / par_secs,
        },
        p_hat: sat_area / init_area,
        deterministic: same_counts && same_measure,
        speedup: seq_secs / par_secs,
        avg_steps: 0.0,
        early_stop_rate: 0.0,
        latency: None,
        scaling: None,
    }
}

/// Cold- vs warm-cache batched querying: a 12-query PSA-threshold sweep
/// (6 thresholds × 2 batch slots) on the prostate model through
/// [`Session::run_batch`]. Cold mode constructs the session inside the
/// timed region, so every query pays plan compilation; warm mode reuses
/// one session whose artifact cache is already populated.
pub fn engine_batch_workload(samples_per_query: usize, seed: u64) -> PerfWorkload {
    let patient = prostate::PatientParams::default();
    let mut model = prostate::cas_model(&patient);
    let nodes: Vec<_> = [14.0, 16.0, 18.0, 20.0, 22.0, 24.0]
        .into_iter()
        .map(|t| model.cx.parse(&format!("{t} - (x + y)")).unwrap())
        .collect();
    let n = samples_per_query.max(1);
    let queries: Vec<Query> = (0..12)
        .map(|i| Query::Estimate {
            smc: SmcSpec {
                init: vec![
                    Dist::Uniform(10.0, 20.0),
                    Dist::Uniform(0.05, 0.2),
                    Dist::Uniform(10.0, 14.0),
                ],
                params: vec![],
                property: Bltl::globally(100.0, Bltl::Prop(Atom::new(nodes[i % 6], RelOp::Ge))),
                t_end: 100.0,
            },
            method: EstimateMethod::Fixed { n },
        })
        .collect();

    let (cold_secs, cold_reports) = best_of(|| {
        let session = Session::new(&model);
        session.run_batch(&queries, seed)
    });
    let warm_session = Session::new(&model);
    let _ = warm_session.run_batch(&queries, seed); // populate the cache
    let (warm_secs, warm_reports) = best_of(|| warm_session.run_batch(&queries, seed));

    let fingerprints = |reports: &[Result<Report, biocheck_engine::Error>]| -> Vec<String> {
        reports
            .iter()
            .map(|r| r.as_ref().expect("valid workload queries").fingerprint())
            .collect()
    };
    let deterministic = fingerprints(&cold_reports) == fingerprints(&warm_reports);
    let p_hat = match &warm_reports[0].as_ref().expect("valid query").value {
        Value::Estimate(e) => e.p_hat,
        _ => unreachable!("estimate query"),
    };
    let queries_n = queries.len();
    PerfWorkload {
        name: "engine_batch".to_string(),
        samples: queries_n,
        seed,
        sequential: ModeTiming {
            wall_seconds: cold_secs,
            samples_per_sec: queries_n as f64 / cold_secs,
        },
        parallel: ModeTiming {
            wall_seconds: warm_secs,
            samples_per_sec: queries_n as f64 / warm_secs,
        },
        p_hat,
        deterministic,
        speedup: cold_secs / warm_secs,
        avg_steps: 0.0,
        early_stop_rate: 0.0,
        latency: None,
        scaling: None,
    }
}

/// Renders a packaged ODE model as a wire [`ModelSource`]: states with
/// display-rendered right-hand sides, every non-state variable pinned
/// to its nominal environment value.
fn model_to_source(m: &OdeModel) -> ModelSource {
    let states: Vec<(String, String)> = m
        .sys
        .states
        .iter()
        .zip(&m.sys.rhs)
        .map(|(&s, &r)| (m.cx.var_name(s).to_string(), m.cx.display(r)))
        .collect();
    let state_set: std::collections::HashSet<usize> =
        m.sys.states.iter().map(|s| s.index()).collect();
    let consts = (0..m.cx.num_vars())
        .filter(|i| !state_set.contains(i))
        .map(|i| {
            (
                m.cx.var_names()[i].clone(),
                m.env.get(i).copied().unwrap_or(0.0),
            )
        })
        .collect();
    ModelSource { states, consts }
}

/// Cold- vs warm-cache serving throughput: the serving layer
/// (`biocheck_serve`) answers a 12-request PSA-threshold sweep on the
/// wire-registered prostate model. Cold mode builds a fresh
/// `ServeCore`, registers the model, and answers every request by
/// computing; warm mode re-answers the same requests against a core
/// whose result cache is already populated — every answer is a pure
/// memoization hit, so each timed repetition replays the batch many
/// times to reach a jitter-proof duration. `samples` counts the
/// distinct requests, `samples_per_sec` is requests/sec
/// (`sequential` = cold, `parallel` = warm), and `deterministic`
/// asserts the warm reports fingerprint-identical to the cold ones
/// (the serving memoization invariant).
pub fn serve_throughput_workload(samples_per_query: usize, seed: u64) -> PerfWorkload {
    let patient = prostate::PatientParams::default();
    let model = prostate::cas_model(&patient);
    let source = model_to_source(&model);
    let n = samples_per_query.max(1);
    let requests: Vec<QueryRequest> = (0..12)
        .map(|i| QueryRequest {
            model: "prostate".into(),
            id: None,
            seed: seed.wrapping_add(i as u64 / 6),
            budget: BudgetSpec::default(),
            query: QuerySpec::Estimate {
                smc: SmcSpecWire {
                    init: vec![
                        DistSpec::Uniform(10.0, 20.0),
                        DistSpec::Uniform(0.05, 0.2),
                        DistSpec::Uniform(10.0, 14.0),
                    ],
                    params: vec![],
                    property: PropSpec::Globally {
                        bound: 100.0,
                        inner: Box::new(PropSpec::Prop {
                            expr: format!(
                                "{} - (x + y)",
                                [14.0, 16.0, 18.0, 20.0, 22.0, 24.0][i % 6]
                            ),
                            rel: RelOp::Ge,
                        }),
                    },
                    t_end: 100.0,
                },
                method: MethodSpec::Fixed { n },
            },
            trace: false,
        })
        .collect();

    let answer_all = |core: &ServeCore| -> Vec<String> {
        requests
            .iter()
            .map(|r| {
                core.run_query(r)
                    .expect("valid workload request")
                    .0
                    .fingerprint()
            })
            .collect()
    };
    let (cold_secs, cold_fps) = best_of(|| {
        let core = ServeCore::new(ServeConfig::default());
        core.register("prostate", &source).expect("valid model");
        answer_all(&core)
    });
    let warm_core = ServeCore::new(ServeConfig::default());
    warm_core
        .register("prostate", &source)
        .expect("valid model");
    let warm_fps = answer_all(&warm_core); // populate the cache
                                           // One warm pass over the 12 requests is pure hash lookups
                                           // (microseconds) — far too short for the CI gate's 15% tolerance to
                                           // be meaningful against scheduler jitter. Time many passes per
                                           // repetition so the warm measurement spans milliseconds; the
                                           // recorded wall time and throughput are per the whole repetition.
    const WARM_ROUNDS: usize = 256;
    let (warm_secs, _) = best_of(|| {
        for _ in 0..WARM_ROUNDS {
            let _ = answer_all(&warm_core);
        }
    });
    let warm_hits = warm_core.cache_stats().hits >= requests.len() * WARM_ROUNDS;

    // Latency percentiles from the core's own phase histograms — the
    // same instrument the daemon's stats/metrics ops expose. The warm
    // core saw the populate pass (misses) plus every warm round (hits).
    let us = |ns: u64| ns as f64 / 1e3;
    let hit = warm_core.metrics().request_hit.snapshot();
    let miss = warm_core.metrics().request_miss.snapshot();
    let latency = LatencySummary {
        hit_p50_us: us(hit.quantile(0.5)),
        hit_p99_us: us(hit.quantile(0.99)),
        miss_p50_us: us(miss.quantile(0.5)),
        miss_p99_us: us(miss.quantile(0.99)),
    };

    // p̂ of the first request, re-read from the cache.
    let (first, _) = warm_core.run_query(&requests[0]).expect("cached");
    let Value::Estimate(est) = &first.value else {
        unreachable!("estimate request returns an estimate");
    };
    let count = requests.len();
    PerfWorkload {
        name: "serve_throughput".to_string(),
        samples: count,
        seed,
        sequential: ModeTiming {
            wall_seconds: cold_secs,
            samples_per_sec: count as f64 / cold_secs,
        },
        parallel: ModeTiming {
            wall_seconds: warm_secs,
            samples_per_sec: (count * WARM_ROUNDS) as f64 / warm_secs,
        },
        p_hat: est.p_hat,
        deterministic: cold_fps == warm_fps && warm_hits,
        speedup: (cold_secs * WARM_ROUNDS as f64) / warm_secs,
        avg_steps: 0.0,
        early_stop_rate: 0.0,
        latency: Some(latency),
        scaling: None,
    }
}

/// One pool-width probe, run inside a `--pool-probe` subprocess whose
/// `BIOCHECK_THREADS` fixed the pool width at startup: times the
/// parallel-path prostate estimate (artifact cache pre-populated, best
/// of `REPEATS` runs) and returns `(wall_seconds, p_hat, fingerprint)` —
/// the fingerprint lets the parent assert bit-identical reports across
/// every width.
pub fn pool_probe(samples: usize, seed: u64) -> (f64, f64, String) {
    let (session, spec) = prostate_workload();
    let query = Query::Estimate {
        smc: spec.clone(),
        method: EstimateMethod::Fixed { n: samples },
    };
    let _ = session
        .query(Query::Estimate {
            smc: spec,
            method: EstimateMethod::Fixed { n: 1 },
        })
        .seed(seed)
        .run()
        .expect("valid workload");
    let (wall, report) = best_of(|| {
        session
            .query(query.clone())
            .seed(seed)
            .run()
            .expect("valid workload")
    });
    let Value::Estimate(est) = &report.value else {
        unreachable!("estimate query returns an estimate");
    };
    (wall, est.p_hat, report.fingerprint())
}

/// The `pool_scaling` workload: the prostate SMC estimate swept over
/// 1/2/8 pool threads. The vendored rayon pool fixes its width at
/// first use from `BIOCHECK_THREADS`, so the sweep re-executes
/// `probe_exe --pool-probe` once per width with the env var set; each
/// subprocess prints `wall_seconds p_hat fingerprint`. The recorded
/// row maps 1 thread to `sequential`, 8 threads to `parallel`
/// (`speedup` is therefore the 8-way scaling factor), carries the full
/// sweep in `scaling`, and sets `deterministic` only when all three
/// widths produced bit-identical fingerprints. Returns `None` (with a
/// diagnostic) if a subprocess fails — the suite then simply omits the
/// row rather than poisoning the bench file.
pub fn pool_scaling_workload(
    probe_exe: &std::path::Path,
    samples: usize,
    seed: u64,
) -> Option<PerfWorkload> {
    let mut results: Vec<(usize, f64, f64, String)> = Vec::new();
    for threads in [1usize, 2, 8] {
        let out = std::process::Command::new(probe_exe)
            .args(["--pool-probe", &samples.to_string(), &seed.to_string()])
            .env("BIOCHECK_THREADS", threads.to_string())
            .env_remove("RAYON_NUM_THREADS")
            .output();
        let out = match out {
            Ok(out) if out.status.success() => out,
            Ok(out) => {
                eprintln!(
                    "pool_scaling: probe at {threads} threads exited {}: {}",
                    out.status,
                    String::from_utf8_lossy(&out.stderr)
                );
                return None;
            }
            Err(e) => {
                eprintln!("pool_scaling: cannot spawn probe at {threads} threads: {e}");
                return None;
            }
        };
        let stdout = String::from_utf8_lossy(&out.stdout);
        let mut fields = stdout.split_whitespace();
        let parsed = (|| {
            let wall: f64 = fields.next()?.parse().ok()?;
            let p_hat: f64 = fields.next()?.parse().ok()?;
            let fingerprint = fields.next()?.to_string();
            Some((wall, p_hat, fingerprint))
        })();
        match parsed {
            Some((wall, p_hat, fingerprint)) => results.push((threads, wall, p_hat, fingerprint)),
            None => {
                eprintln!("pool_scaling: malformed probe output at {threads} threads: {stdout:?}");
                return None;
            }
        }
    }
    let per_sec = |wall: f64| samples as f64 / wall;
    let (t1, t2, t8) = (&results[0], &results[1], &results[2]);
    Some(PerfWorkload {
        name: "pool_scaling".to_string(),
        samples,
        seed,
        sequential: ModeTiming {
            wall_seconds: t1.1,
            samples_per_sec: per_sec(t1.1),
        },
        parallel: ModeTiming {
            wall_seconds: t8.1,
            samples_per_sec: per_sec(t8.1),
        },
        p_hat: t1.2,
        deterministic: results.iter().all(|r| r.3 == t1.3),
        speedup: t1.1 / t8.1,
        avg_steps: 0.0,
        early_stop_rate: 0.0,
        latency: None,
        scaling: Some(ScalingSummary {
            t1_samples_per_sec: per_sec(t1.1),
            t2_samples_per_sec: per_sec(t2.1),
            t8_samples_per_sec: per_sec(t8.1),
        }),
    })
}

/// Runs the perf workloads: three SMC samplers (`samples` Bernoulli
/// draws each), the branch-and-prune paving workload, and the
/// cold-vs-warm `engine_batch` and `serve_throughput` workloads
/// (`samples`/20 draws per query). The subprocess-based `pool_scaling`
/// workload is appended separately by the `report` bin (it needs an
/// executable to re-exec; see [`pool_scaling_workload`]).
pub fn perf_workloads(samples: usize, seed: u64) -> Vec<PerfWorkload> {
    let (prostate_session, prostate_spec) = prostate_workload();
    let (cardiac_session, cardiac_spec) = cardiac_workload();
    let (radiation_session, radiation_spec) = radiation_workload();
    vec![
        run_workload(
            "smc_prostate",
            &prostate_session,
            &prostate_spec,
            samples,
            seed,
        ),
        run_workload(
            "smc_cardiac",
            &cardiac_session,
            &cardiac_spec,
            samples,
            seed,
        ),
        run_workload(
            "smc_radiation",
            &radiation_session,
            &radiation_spec,
            samples,
            seed,
        ),
        icp_pave_workload(),
        engine_batch_workload(samples / 20, seed),
        serve_throughput_workload(samples / 20, seed),
    ]
}

/// Renders the `BENCH_<n>.json` document. `calibration` is the
/// measuring machine's [`calibration_score`].
pub fn perf_to_json(rows: &[PerfWorkload], bench_version: u32, calibration: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"bench_version\": {bench_version},\n"));
    s.push_str(&format!(
        "  \"threads\": {},\n",
        rayon::current_num_threads()
    ));
    s.push_str(&format!("  \"calibration\": {calibration:.0},\n"));
    s.push_str("  \"workloads\": [\n");
    for (i, w) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"seed\": {}, \
             \"sequential\": {{\"wall_seconds\": {:.6}, \"samples_per_sec\": {:.2}}}, \
             \"parallel\": {{\"wall_seconds\": {:.6}, \"samples_per_sec\": {:.2}}}, \
             \"p_hat\": {}, \"deterministic\": {}, \"speedup\": {:.3}, \
             \"avg_steps\": {:.2}, \"early_stop_rate\": {:.3}",
            crate::json_escape(&w.name),
            w.samples,
            w.seed,
            w.sequential.wall_seconds,
            w.sequential.samples_per_sec,
            w.parallel.wall_seconds,
            w.parallel.samples_per_sec,
            w.p_hat,
            w.deterministic,
            w.speedup,
            w.avg_steps,
            w.early_stop_rate,
        ));
        // Latency percentiles (serving workload only). The compare
        // gate keys on samples_per_sec and never reads these — they
        // are a recorded trajectory, not a gated quantity.
        if let Some(l) = &w.latency {
            s.push_str(&format!(
                ", \"latency\": {{\"hit_p50_us\": {:.3}, \"hit_p99_us\": {:.3}, \
                 \"miss_p50_us\": {:.3}, \"miss_p99_us\": {:.3}}}",
                l.hit_p50_us, l.hit_p99_us, l.miss_p50_us, l.miss_p99_us
            ));
        }
        // Pool-width sweep (pool_scaling workload only) — recorded
        // trajectory, never gated.
        if let Some(sc) = &w.scaling {
            s.push_str(&format!(
                ", \"scaling\": {{\"t1_samples_per_sec\": {:.2}, \"t2_samples_per_sec\": {:.2}, \
                 \"t8_samples_per_sec\": {:.2}}}",
                sc.t1_samples_per_sec, sc.t2_samples_per_sec, sc.t8_samples_per_sec
            ));
        }
        s.push_str(&format!(
            "}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_and_timed() {
        // Small sample counts: this is a correctness test, not a timing.
        for w in perf_workloads(8, 7) {
            assert!(w.deterministic, "{}: parallel != sequential", w.name);
            assert!(w.sequential.wall_seconds > 0.0 && w.parallel.wall_seconds > 0.0);
            assert!(
                (0.0..=1.0).contains(&w.p_hat),
                "{}: p̂ = {}",
                w.name,
                w.p_hat
            );
            assert!(
                (0.0..=1.0).contains(&w.early_stop_rate),
                "{}: early_stop_rate = {}",
                w.name,
                w.early_stop_rate
            );
            if w.name.starts_with("smc_") {
                assert!(
                    w.avg_steps >= 1.0,
                    "{}: avg_steps = {}",
                    w.name,
                    w.avg_steps
                );
            }
        }
    }

    #[test]
    fn pool_scaling_row_renders_the_sweep() {
        let w = PerfWorkload {
            name: "pool_scaling".to_string(),
            samples: 100,
            seed: 7,
            sequential: ModeTiming {
                wall_seconds: 0.2,
                samples_per_sec: 500.0,
            },
            parallel: ModeTiming {
                wall_seconds: 0.05,
                samples_per_sec: 2000.0,
            },
            p_hat: 0.5,
            deterministic: true,
            speedup: 4.0,
            avg_steps: 0.0,
            early_stop_rate: 0.0,
            latency: None,
            scaling: Some(ScalingSummary {
                t1_samples_per_sec: 500.0,
                t2_samples_per_sec: 950.0,
                t8_samples_per_sec: 2000.0,
            }),
        };
        let json = perf_to_json(&[w], 10, 1.0e9);
        for key in [
            "pool_scaling",
            "\"scaling\"",
            "t1_samples_per_sec",
            "t2_samples_per_sec",
            "t8_samples_per_sec",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches("\"scaling\"").count(), 1);
    }

    #[test]
    fn calibration_is_sane_and_repeatable() {
        let a = calibration_score();
        let b = calibration_score();
        // A modern core does between ~10M and ~100G of these per second;
        // anything outside means the loop was folded away or the clock
        // is broken. Repeatability bound is loose (CI runners are noisy).
        for c in [a, b] {
            assert!(
                c.is_finite() && (1.0e7..1.0e11).contains(&c),
                "score {c:.3e}"
            );
        }
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 10.0, "calibration unstable: {a:.3e} vs {b:.3e}");
    }

    #[test]
    fn json_schema_fields_present() {
        let rows = perf_workloads(4, 1);
        let json = perf_to_json(&rows, 1, 1.0e9);
        for key in [
            "bench_version",
            "threads",
            "calibration",
            "workloads",
            "smc_prostate",
            "smc_cardiac",
            "smc_radiation",
            "icp_pave_ring",
            "engine_batch",
            "serve_throughput",
            "wall_seconds",
            "samples_per_sec",
            "deterministic",
            "speedup",
            "avg_steps",
            "early_stop_rate",
            "hit_p50_us",
            "hit_p99_us",
            "miss_p50_us",
            "miss_p99_us",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Only the serving workload carries the latency object, and no
        // in-process workload carries the subprocess scaling sweep.
        assert_eq!(json.matches("\"latency\"").count(), 1);
        assert_eq!(json.matches("\"scaling\"").count(), 0);
        let serve = rows.iter().find(|w| w.name == "serve_throughput").unwrap();
        let l = serve.latency.expect("serve workload records latency");
        assert!(l.hit_p50_us > 0.0 && l.hit_p99_us >= l.hit_p50_us);
        assert!(l.miss_p50_us > 0.0 && l.miss_p99_us >= l.miss_p50_us);
    }
}
