//! Built-in case-study model sources for the static pre-flight lint.
//!
//! The three DAC'20 case studies live in `biocheck_models` as built
//! contexts; this module renders each back into the wire-level
//! [`ModelSource`] through the display round-trip (a print→parse round
//! trip is value-preserving, see `biocheck_expr`), so the model a client
//! lints over the wire is *exactly* the library model — no hand-copied
//! right-hand sides to drift out of sync.
//!
//! Two consumers share these definitions:
//!
//! * `biocheck_client --lint MODEL` registers the source against a live
//!   daemon and prints the lint report as one canonical JSON line.
//! * `tests/lint_fixtures.rs` runs the same lint on a direct in-process
//!   session and asserts the line equals the pinned
//!   `fixtures/lint_MODEL.json`.
//!
//! CI runs both, so daemon output, direct output, and the committed
//! fixture are pairwise byte-identical.

use crate::json::Json;
use crate::wire::ModelSource;

/// The case-study names `--lint` accepts, in fixture order.
pub const CASE_STUDIES: [&str; 3] = ["prostate", "cardiac", "radiation"];

fn from_ode(m: &biocheck_models::OdeModel) -> ModelSource {
    ModelSource {
        states: m
            .sys
            .states
            .iter()
            .zip(&m.sys.rhs)
            .map(|(&s, &r)| (m.cx.var_name(s).to_string(), m.cx.display(r)))
            .collect(),
        // Non-state variables ride along as constants at their nominal
        // env value — lint then sees them as declared-but-substituted,
        // exactly the "unused parameter" shape SBML imports produce.
        consts: m
            .cx
            .var_names()
            .iter()
            .enumerate()
            .filter(|(i, _)| !m.sys.states.iter().any(|s| s.index() == *i))
            .map(|(i, n)| (n.clone(), m.env[i]))
            .collect(),
    }
}

/// Renders the named built-in case-study model as a registration
/// payload. `None` for unknown names.
pub fn case_study_source(name: &str) -> Option<ModelSource> {
    match name {
        "prostate" => Some(from_ode(&biocheck_models::prostate::cas_model(
            &biocheck_models::prostate::PatientParams::default(),
        ))),
        "cardiac" => Some(from_ode(&biocheck_models::cardiac::fenton_karma())),
        "radiation" => {
            // The untreated-cell flow (mode "0") of the TBI automaton as
            // a plain ODE source.
            let ha = biocheck_models::radiation::tbi_automaton();
            let m0 = ha.mode_by_name("0")?;
            Some(ModelSource {
                states: ha
                    .states
                    .iter()
                    .zip(&ha.modes[m0].rhs)
                    .map(|(&s, &r)| (ha.cx.var_name(s).to_string(), ha.cx.display(r)))
                    .collect(),
                consts: vec![],
            })
        }
        _ => None,
    }
}

/// The deterministic subset of a lint reply that `fixtures/lint_*.json`
/// pins: the model name, the report's `value` object, and the report
/// fingerprint. Provenance timings are deliberately excluded (wall-clock
/// noise would break a byte-for-byte diff).
pub fn pinned_lint_json(name: &str, report_value: Json, fingerprint: String) -> Json {
    Json::obj([
        ("model", Json::str(name)),
        ("value", report_value),
        ("fingerprint", Json::str(fingerprint)),
    ])
}
