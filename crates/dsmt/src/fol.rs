//! Quantifier-free first-order formulas over theory atoms, with NNF
//! normalization (the ¬-pushing rules of the paper's Definition 1).

use crate::solver::FlagId;
use biocheck_expr::{Atom, RelOp};

/// A quantifier-free LRF-formula (Boolean combinations of atoms), plus
/// contractor flags for guarded ODE constraints.
#[derive(Clone, Debug)]
pub enum Fol {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// A theory atom `t ⋈ 0`.
    Atom(Atom),
    /// The activation flag of a guarded contractor (see
    /// [`crate::DeltaSmt::add_contractor`]).
    Flag(FlagId),
    /// Conjunction.
    And(Vec<Fol>),
    /// Disjunction.
    Or(Vec<Fol>),
    /// Negation.
    Not(Box<Fol>),
}

impl Fol {
    /// Conjunction helper.
    pub fn and(fs: Vec<Fol>) -> Fol {
        Fol::And(fs)
    }

    /// Disjunction helper.
    pub fn or(fs: Vec<Fol>) -> Fol {
        Fol::Or(fs)
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Fol) -> Fol {
        Fol::Not(Box::new(f))
    }

    /// Implication `a → b` as `¬a ∨ b` (the paper's definition).
    pub fn implies(a: Fol, b: Fol) -> Fol {
        Fol::Or(vec![Fol::not(a), b])
    }

    /// Negation-normal form: negations pushed to atoms and eliminated
    /// there by relation flipping; `¬(t = 0)` expands to `t > 0 ∨ t < 0`
    /// so equalities only ever occur positively.
    ///
    /// # Panics
    ///
    /// Panics on a negated contractor flag: the complement of a flow
    /// constraint is not a constraint the theory solver can check.
    pub fn nnf(&self) -> Fol {
        self.nnf_inner(false)
    }

    fn nnf_inner(&self, negate: bool) -> Fol {
        match self {
            Fol::True => {
                if negate {
                    Fol::False
                } else {
                    Fol::True
                }
            }
            Fol::False => {
                if negate {
                    Fol::True
                } else {
                    Fol::False
                }
            }
            Fol::Atom(a) => {
                if !negate {
                    return Fol::Atom(*a);
                }
                match a.op {
                    RelOp::Eq => Fol::Or(vec![
                        Fol::Atom(Atom::new(a.expr, RelOp::Gt)),
                        Fol::Atom(Atom::new(a.expr, RelOp::Lt)),
                    ]),
                    _ => {
                        // negate() only fails on Eq, handled above.
                        let mut dummy = biocheck_expr::Context::new();
                        Fol::Atom(a.negate(&mut dummy).expect("non-Eq atom negates"))
                    }
                }
            }
            Fol::Flag(f) => {
                assert!(
                    !negate,
                    "cannot negate a contractor flag: flow constraints have no complement"
                );
                Fol::Flag(*f)
            }
            Fol::And(fs) => {
                let inner: Vec<Fol> = fs.iter().map(|f| f.nnf_inner(negate)).collect();
                if negate {
                    Fol::Or(inner)
                } else {
                    Fol::And(inner)
                }
            }
            Fol::Or(fs) => {
                let inner: Vec<Fol> = fs.iter().map(|f| f.nnf_inner(negate)).collect();
                if negate {
                    Fol::And(inner)
                } else {
                    Fol::Or(inner)
                }
            }
            Fol::Not(f) => f.nnf_inner(!negate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biocheck_expr::Context;

    fn atom(cx: &mut Context, src: &str, op: RelOp) -> Atom {
        let e = cx.parse(src).unwrap();
        Atom::new(e, op)
    }

    #[test]
    fn nnf_pushes_negation_to_atoms() {
        let mut cx = Context::new();
        let a = atom(&mut cx, "x", RelOp::Ge);
        let b = atom(&mut cx, "y", RelOp::Gt);
        // ¬(a ∧ ¬b) = ¬a ∨ b
        let f = Fol::not(Fol::and(vec![Fol::Atom(a), Fol::not(Fol::Atom(b))]));
        match f.nnf() {
            Fol::Or(fs) => {
                assert_eq!(fs.len(), 2);
                match (&fs[0], &fs[1]) {
                    (Fol::Atom(na), Fol::Atom(bb)) => {
                        assert_eq!(na.op, RelOp::Lt); // ¬(x ≥ 0) = x < 0
                        assert_eq!(bb.op, RelOp::Gt);
                    }
                    other => panic!("unexpected NNF {other:?}"),
                }
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn negated_equality_becomes_disjunction() {
        let mut cx = Context::new();
        let a = atom(&mut cx, "x - 1", RelOp::Eq);
        match Fol::not(Fol::Atom(a)).nnf() {
            Fol::Or(fs) => {
                assert_eq!(fs.len(), 2);
                let ops: Vec<RelOp> = fs
                    .iter()
                    .map(|f| match f {
                        Fol::Atom(a) => a.op,
                        _ => panic!("atom expected"),
                    })
                    .collect();
                assert!(ops.contains(&RelOp::Gt) && ops.contains(&RelOp::Lt));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn double_negation_cancels() {
        let mut cx = Context::new();
        let a = atom(&mut cx, "x", RelOp::Gt);
        match Fol::not(Fol::not(Fol::Atom(a))).nnf() {
            Fol::Atom(res) => assert_eq!(res.op, RelOp::Gt),
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn constants_flip() {
        assert!(matches!(Fol::not(Fol::True).nnf(), Fol::False));
        assert!(matches!(Fol::not(Fol::False).nnf(), Fol::True));
    }

    #[test]
    fn implication_definition() {
        let mut cx = Context::new();
        let a = atom(&mut cx, "x", RelOp::Gt);
        let b = atom(&mut cx, "y", RelOp::Gt);
        match Fol::implies(Fol::Atom(a), Fol::Atom(b)).nnf() {
            Fol::Or(fs) => assert_eq!(fs.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "cannot negate a contractor flag")]
    fn negated_flag_rejected() {
        let _ = Fol::not(Fol::Flag(FlagId(0))).nnf();
    }
}
