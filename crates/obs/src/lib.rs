//! Observability primitives for the BioCheck serving stack.
//!
//! Four tools, all dependency-free and cheap enough to leave on in
//! production:
//!
//! * [`Histogram`] — a lock-free, log-linear bucketed latency
//!   histogram. Recording is a handful of relaxed atomic operations
//!   (no locks, no allocation), so many threads can record into one
//!   histogram concurrently, and independent histograms can be
//!   [merged](Histogram::merge) after the fact. A [`Snapshot`]
//!   extracts p50/p90/p99/max with a bounded relative error of
//!   1/16 (6.25%) — see the [`hist`] module docs for the bucket
//!   layout and the exact error bound.
//!
//! * [`span!`] — an RAII span timer with a pluggable process-global
//!   [`Recorder`]. When no recorder is installed (the default) a span
//!   costs one relaxed atomic load and never reads the clock; with a
//!   recorder installed, each span reports its name and elapsed
//!   nanoseconds on drop. [`event`] reports point-in-time occurrences
//!   the same way.
//!
//! * [`TraceCtx`] — request-scoped tracing: a per-request span tree
//!   collected into a lock-free bounded ring ([`SpanRing`]) plus live
//!   [`Progress`] counters the solver loops publish at their existing
//!   budget-poll points. Strictly observational: nothing here feeds a
//!   fingerprint, a memoization key, or a persisted byte.
//!
//! * [`Windowed`] — a sliding-window view over [`Histogram`] (last-60s
//!   percentiles for long-lived daemons whose lifetime p99 goes stale).
//!
//! The serving layer (`biocheck_serve`) aggregates histograms per
//! request phase and exposes them via `{"op":"stats"}` and
//! `{"op":"metrics"}`; the span facade is wired to stderr by
//! `biocheckd --trace` for interactive debugging.
//!
//! ```
//! use biocheck_obs::Histogram;
//!
//! let h = Histogram::new();
//! for v in [100u64, 200, 300, 400, 500] {
//!     h.record_ns(v);
//! }
//! let snap = h.snapshot();
//! assert_eq!(snap.count(), 5);
//! assert_eq!(snap.max_ns(), 500);
//! assert!(snap.quantile(0.5) >= 280 && snap.quantile(0.5) <= 320);
//! ```

pub mod hist;
pub mod span;
pub mod trace;
pub mod window;

pub use hist::{Histogram, Snapshot};
pub use span::{event, recorder_installed, set_recorder, Recorder, Span};
pub use trace::{Progress, ProgressSnapshot, SpanRecord, SpanRing, TraceCtx, TraceSpan};
pub use window::Windowed;
