//! Property tests: validated tubes always contain numeric solutions; the
//! adaptive integrator matches closed forms on random linear systems.

use biocheck_expr::Context;
use biocheck_interval::{IBox, Interval};
use biocheck_ode::{DormandPrince, OdeSystem, ValidatedOde};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// dx/dt = a·x has solution x0·e^{a·t}; DoPri must match to tolerance.
    #[test]
    fn dopri_matches_linear_closed_form(a in -2.0..0.5f64, x0 in 0.1..3.0f64, t_end in 0.1..3.0f64) {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let rhs = cx.parse(&format!("{a} * x")).unwrap();
        let ode = OdeSystem::new(vec![x], vec![rhs]).compile(&cx);
        let tr = DormandPrince::default()
            .integrate(&ode, &[0.0], &[x0], (0.0, t_end))
            .unwrap();
        let want = x0 * (a * t_end).exp();
        prop_assert!((tr.last_state()[0] - want).abs() < 1e-6 * (1.0 + want.abs()));
    }

    /// The validated tube from a box of initial states contains the
    /// numeric trajectory of every sampled member, at every step end.
    #[test]
    fn tube_contains_members(
        a in -1.5..-0.1f64,
        b in -0.5..0.5f64,
        lo in 0.4..0.8f64,
        w in 0.0..0.4f64,
        frac in 0.0..1.0f64,
    ) {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let y = cx.intern_var("y");
        // Dissipative coupled system.
        let r1 = cx.parse(&format!("{a}*x + {b}*y")).unwrap();
        let r2 = cx.parse(&format!("{b}*x + {a}*y - 0.1*y^3")).unwrap();
        let sys = OdeSystem::new(vec![x, y], vec![r1, r2]);
        let vo = ValidatedOde::new(&mut cx, &sys);
        let co = sys.compile(&cx);
        let y0_box = IBox::new(vec![
            Interval::new(lo, lo + w),
            Interval::new(-0.2, 0.2),
        ]);
        let env = IBox::uniform(cx.num_vars(), Interval::ZERO);
        let tube = vo.flow(&env, &y0_box, 1.0).unwrap();
        // Pick one member of the initial box.
        let p = [lo + frac * w, -0.2 + frac * 0.4];
        let tr = DormandPrince::default()
            .integrate(&co, &[0.0, 0.0], &p, (0.0, tube.duration()))
            .unwrap();
        for s in &tube.steps {
            let state = tr.value_at(s.t1);
            prop_assert!(
                s.end.contains_point(&state),
                "t={}: {:?} outside {:?}", s.t1, state, s.end
            );
        }
    }

    /// Event time for dx/dt = c crossing threshold θ from 0 is θ/c.
    #[test]
    fn event_time_linear(c in 0.2..3.0f64, theta in 0.1..2.0f64) {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let rhs = cx.constant(c);
        let ode = OdeSystem::new(vec![x], vec![rhs]).compile(&cx);
        let guard = cx.parse(&format!("x - {theta}")).unwrap();
        let horizon = theta / c + 1.0;
        let (_, hit) = ode
            .integrate_with_events(&cx, &[0.0], &[0.0], (0.0, horizon), &[guard], 1e-10)
            .unwrap();
        let hit = hit.expect("must cross");
        prop_assert!((hit.t - theta / c).abs() < 1e-6);
    }

    /// Hermite interpolation stays within the sample hull for monotone
    /// exponential decay (no spurious oscillation).
    #[test]
    fn interpolation_bounded_on_decay(x0 in 0.5..2.0f64, t_q in 0.0..2.0f64) {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let rhs = cx.parse("-x").unwrap();
        let ode = OdeSystem::new(vec![x], vec![rhs]).compile(&cx);
        let tr = DormandPrince::default()
            .integrate(&ode, &[0.0], &[x0], (0.0, 2.0))
            .unwrap();
        let v = tr.value_at(t_q)[0];
        prop_assert!(v <= x0 + 1e-9 && v >= x0 * (-2.0f64).exp() - 1e-9);
        let exact = x0 * (-t_q).exp();
        prop_assert!((v - exact).abs() < 1e-6);
    }
}
