//! Elementary transcendental functions on [`Interval`].
//!
//! Standard-library float functions are faithfully rounded (error ≤ ~1 ulp)
//! on all mainstream platforms; we widen every computed endpoint by two
//! ulps, which strictly dominates that error. Trigonometric range reduction
//! additionally uses a conservative slack when deciding whether an extremum
//! lies inside the argument interval, so a borderline case yields a wider
//! (still sound) result.

use crate::interval::Interval;
use crate::round::{down_n, up_n};

/// Number of outward ulp steps applied after a libm call.
const T_ULPS: u32 = 2;

/// Does `{ offset + k·period : k ∈ ℤ }` intersect `[lo, hi]`?
///
/// Conservative: may answer `true` for near misses (which only widens
/// results), never `false` for a genuine hit.
fn contains_grid_point(lo: f64, hi: f64, offset: f64, period: f64) -> bool {
    if !lo.is_finite() || !hi.is_finite() {
        return true;
    }
    let t0 = (lo - offset) / period;
    let t1 = (hi - offset) / period;
    let slack = 1e-9 * (1.0 + t0.abs().max(t1.abs()));
    (t1 + slack).floor() >= (t0 - slack).ceil()
}

impl Interval {
    /// Natural exponential `eˣ`. Always a subset of `[0, +inf]`.
    pub fn exp(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let lo = down_n(self.lo().exp(), T_ULPS).max(0.0);
        let hi = up_n(self.hi().exp(), T_ULPS);
        Interval::exact(lo, hi)
    }

    /// Natural logarithm. The domain is intersected with `(0, +inf)`;
    /// returns `EMPTY` when the interval has no positive part.
    pub fn ln(&self) -> Interval {
        if self.is_empty() || self.hi() <= 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.lo() <= 0.0 {
            f64::NEG_INFINITY
        } else {
            down_n(self.lo().ln(), T_ULPS)
        };
        let hi = up_n(self.hi().ln(), T_ULPS);
        Interval::exact(lo, hi)
    }

    /// Square root. The domain is intersected with `[0, +inf)`;
    /// returns `EMPTY` when the interval is entirely negative.
    pub fn sqrt(&self) -> Interval {
        if self.is_empty() || self.hi() < 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.lo() <= 0.0 {
            0.0
        } else {
            down_n(self.lo().sqrt(), 1).max(0.0)
        };
        let hi = up_n(self.hi().sqrt(), 1);
        Interval::exact(lo, hi)
    }

    /// Real power `x^y = exp(y·ln x)` on the domain `x > 0` (with a sound
    /// extension to `x = 0`). Use [`Interval::powi`] for integer exponents,
    /// which also handles negative bases.
    pub fn powf(&self, e: &Interval) -> Interval {
        if self.is_empty() || e.is_empty() {
            return Interval::EMPTY;
        }
        let base = self.intersect(&Interval::new(0.0, f64::INFINITY));
        if base.is_empty() {
            return Interval::EMPTY;
        }
        (base.ln() * *e).exp()
    }

    /// Sine.
    pub fn sin(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let (lo, hi) = (self.lo(), self.hi());
        if !lo.is_finite() || !hi.is_finite() || hi - lo >= Interval::TWO_PI.hi() {
            return Interval::new(-1.0, 1.0);
        }
        let pi = std::f64::consts::PI;
        let two_pi = 2.0 * pi;
        let slo = lo.sin();
        let shi = hi.sin();
        let mut out_lo = down_n(slo.min(shi), T_ULPS);
        let mut out_hi = up_n(slo.max(shi), T_ULPS);
        if contains_grid_point(lo, hi, pi / 2.0, two_pi) {
            out_hi = 1.0;
        }
        if contains_grid_point(lo, hi, -pi / 2.0, two_pi) {
            out_lo = -1.0;
        }
        Interval::exact(out_lo.max(-1.0), out_hi.min(1.0))
    }

    /// Cosine.
    pub fn cos(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let (lo, hi) = (self.lo(), self.hi());
        if !lo.is_finite() || !hi.is_finite() || hi - lo >= Interval::TWO_PI.hi() {
            return Interval::new(-1.0, 1.0);
        }
        let pi = std::f64::consts::PI;
        let two_pi = 2.0 * pi;
        let clo = lo.cos();
        let chi = hi.cos();
        let mut out_lo = down_n(clo.min(chi), T_ULPS);
        let mut out_hi = up_n(clo.max(chi), T_ULPS);
        if contains_grid_point(lo, hi, 0.0, two_pi) {
            out_hi = 1.0;
        }
        if contains_grid_point(lo, hi, pi, two_pi) {
            out_lo = -1.0;
        }
        Interval::exact(out_lo.max(-1.0), out_hi.min(1.0))
    }

    /// Tangent. Returns `ENTIRE` when the interval may contain a pole.
    pub fn tan(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let (lo, hi) = (self.lo(), self.hi());
        let pi = std::f64::consts::PI;
        if !lo.is_finite()
            || !hi.is_finite()
            || hi - lo >= pi
            || contains_grid_point(lo, hi, pi / 2.0, pi)
        {
            return Interval::ENTIRE;
        }
        Interval::exact(down_n(lo.tan(), T_ULPS), up_n(hi.tan(), T_ULPS))
    }

    /// Arc sine on the domain `[-1, 1]` (intersected).
    pub fn asin(&self) -> Interval {
        let d = self.intersect(&Interval::new(-1.0, 1.0));
        if d.is_empty() {
            return Interval::EMPTY;
        }
        Interval::exact(
            down_n(d.lo().asin(), T_ULPS).max(-Interval::HALF_PI.hi()),
            up_n(d.hi().asin(), T_ULPS).min(Interval::HALF_PI.hi()),
        )
    }

    /// Arc cosine on the domain `[-1, 1]` (intersected).
    pub fn acos(&self) -> Interval {
        let d = self.intersect(&Interval::new(-1.0, 1.0));
        if d.is_empty() {
            return Interval::EMPTY;
        }
        Interval::exact(
            down_n(d.hi().acos(), T_ULPS).max(0.0),
            up_n(d.lo().acos(), T_ULPS).min(Interval::PI.hi()),
        )
    }

    /// Arc tangent (monotone, total).
    pub fn atan(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval::exact(
            down_n(self.lo().atan(), T_ULPS).max(-Interval::HALF_PI.hi()),
            up_n(self.hi().atan(), T_ULPS).min(Interval::HALF_PI.hi()),
        )
    }

    /// Hyperbolic sine (monotone, total).
    pub fn sinh(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval::exact(
            down_n(self.lo().sinh(), T_ULPS),
            up_n(self.hi().sinh(), T_ULPS),
        )
    }

    /// Hyperbolic cosine (even, minimum 1 at 0).
    pub fn cosh(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let a = self.lo().cosh();
        let b = self.hi().cosh();
        let lo = if self.contains(0.0) {
            1.0
        } else {
            down_n(a.min(b), T_ULPS).max(1.0)
        };
        Interval::exact(lo, up_n(a.max(b), T_ULPS))
    }

    /// Hyperbolic tangent (monotone, bounded in `[-1, 1]`).
    pub fn tanh(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval::exact(
            down_n(self.lo().tanh(), T_ULPS).max(-1.0),
            up_n(self.hi().tanh(), T_ULPS).min(1.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_encloses(i: Interval, v: f64) {
        assert!(i.contains(v), "{i:?} should contain {v}");
    }

    #[test]
    fn exp_ln_roundtrip() {
        let x = Interval::new(0.5, 2.0);
        let y = x.exp().ln();
        assert!(y.contains_interval(&x));
        assert_encloses(Interval::point(1.0).exp(), std::f64::consts::E);
        assert_encloses(Interval::point(std::f64::consts::E).ln(), 1.0);
    }

    #[test]
    fn exp_stays_nonnegative() {
        let y = Interval::new(-1e9, -700.0).exp();
        assert!(y.lo() >= 0.0);
        assert!(y.hi() < 1e-300);
    }

    #[test]
    fn ln_domain_clipping() {
        assert!(Interval::new(-2.0, -1.0).ln().is_empty());
        let y = Interval::new(-1.0, 1.0).ln();
        assert_eq!(y.lo(), f64::NEG_INFINITY);
        assert!(y.hi() >= 0.0);
        assert!(Interval::new(0.0, 0.0).ln().is_empty());
    }

    #[test]
    fn sqrt_basic() {
        let y = Interval::new(4.0, 9.0).sqrt();
        assert_encloses(y, 2.0);
        assert_encloses(y, 3.0);
        assert!(Interval::new(-3.0, -1.0).sqrt().is_empty());
        let clipped = Interval::new(-1.0, 4.0).sqrt();
        assert_eq!(clipped.lo(), 0.0);
        assert!(clipped.hi() >= 2.0);
    }

    #[test]
    fn powf_matches_scalar() {
        let x = Interval::new(2.0, 3.0);
        let e = Interval::point(2.5);
        let y = x.powf(&e);
        assert_encloses(y, 2.0f64.powf(2.5));
        assert_encloses(y, 3.0f64.powf(2.5));
        assert_encloses(y, 2.5f64.powf(2.5));
    }

    #[test]
    fn sin_contains_extrema() {
        use std::f64::consts::PI;
        let y = Interval::new(0.0, PI).sin();
        assert_eq!(y.hi(), 1.0);
        assert!(y.lo() <= 0.0);
        let z = Interval::new(-PI, 0.0).sin();
        assert_eq!(z.lo(), -1.0);
        // No extremum inside a narrow monotone window.
        let w = Interval::new(0.1, 0.2).sin();
        assert!(w.hi() < 0.21 && w.lo() > 0.09);
        // Huge intervals collapse to [-1,1].
        assert_eq!(Interval::new(0.0, 100.0).sin(), Interval::new(-1.0, 1.0));
    }

    #[test]
    fn cos_contains_extrema() {
        use std::f64::consts::PI;
        let y = Interval::new(-0.5, 0.5).cos();
        assert_eq!(y.hi(), 1.0);
        let z = Interval::new(3.0, 3.3).cos();
        assert_eq!(z.lo(), -1.0);
        assert_encloses(Interval::point(PI / 3.0).cos(), 0.5);
    }

    #[test]
    fn sin_point_samples() {
        for k in 0..50 {
            let x = -7.0 + 0.29 * k as f64;
            assert_encloses(Interval::point(x).sin(), x.sin());
            assert_encloses(Interval::point(x).cos(), x.cos());
        }
    }

    #[test]
    fn tan_pole_detection() {
        use std::f64::consts::PI;
        assert_eq!(Interval::new(1.0, 2.0).tan(), Interval::ENTIRE); // contains pi/2
        let y = Interval::new(-0.5, 0.5).tan();
        assert!(y.is_bounded());
        assert_encloses(y, 0.0);
        assert_eq!(Interval::new(0.0, PI).tan(), Interval::ENTIRE);
    }

    #[test]
    fn inverse_trig() {
        let y = Interval::new(-1.0, 1.0).asin();
        assert!(y.contains(std::f64::consts::FRAC_PI_2 - 1e-12));
        assert!(y.contains(-std::f64::consts::FRAC_PI_2 + 1e-12));
        let z = Interval::new(-2.0, 2.0).acos();
        assert!(z.lo() <= 1e-12 && z.hi() >= std::f64::consts::PI - 1e-12);
        let a = Interval::ENTIRE.atan();
        assert!(a.is_bounded());
        assert!(a.width() <= std::f64::consts::PI + 1e-9);
    }

    #[test]
    fn hyperbolics() {
        let x = Interval::new(-1.0, 2.0);
        assert_encloses(x.sinh(), 0.0);
        assert_encloses(x.sinh(), 2.0f64.sinh());
        assert_eq!(x.cosh().lo(), 1.0);
        assert_encloses(x.cosh(), 2.0f64.cosh());
        let t = Interval::ENTIRE.tanh();
        assert!(t.lo() >= -1.0 && t.hi() <= 1.0);
        let nz = Interval::new(1.0, 2.0).cosh();
        assert!(nz.lo() > 1.0);
    }

    #[test]
    fn empties_propagate() {
        let e = Interval::EMPTY;
        assert!(e.exp().is_empty());
        assert!(e.ln().is_empty());
        assert!(e.sqrt().is_empty());
        assert!(e.sin().is_empty());
        assert!(e.cos().is_empty());
        assert!(e.tan().is_empty());
        assert!(e.atan().is_empty());
        assert!(e.tanh().is_empty());
        assert!(e.sinh().is_empty());
        assert!(e.cosh().is_empty());
        assert!(e.powf(&Interval::ONE).is_empty());
    }
}
