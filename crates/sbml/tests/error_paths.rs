//! Error-path coverage for the SBML front end: malformed, truncated,
//! and duplicate-id documents must all surface as typed [`SbmlError`]s
//! with actionable messages — never a panic, never a silently-aliased
//! model.

use biocheck_sbml::{SbmlError, SbmlModel};

fn err(src: &str) -> SbmlError {
    SbmlModel::parse(src).expect_err("document must be rejected")
}

#[test]
fn malformed_xml_is_a_typed_error() {
    for src in [
        "",
        "not xml at all",
        "<sbml><model id='x'><listOfSpecies></sbml>",
        "<sbml><model id=x></model></sbml>",
        "<sbml><model id='x'>&bogus;</model></sbml>",
    ] {
        let e = err(src);
        assert!(!e.message.is_empty(), "empty message for {src:?}");
    }
}

#[test]
fn truncated_document_is_a_typed_error() {
    // A valid document cut mid-stream at various points: every prefix
    // must fail cleanly (either malformed XML or a missing element).
    let full = r#"<sbml><model id="t">
      <listOfSpecies><species id="A" initialConcentration="1"/></listOfSpecies>
      <listOfReactions><reaction id="r">
        <listOfReactants><speciesReference species="A"/></listOfReactants>
        <kineticLaw><math><ci>A</ci></math></kineticLaw>
      </reaction></listOfReactions>
    </model></sbml>"#;
    for cut in [10, 40, 90, 160, full.len() - 8] {
        assert!(
            SbmlModel::parse(&full[..cut]).is_err(),
            "truncation at byte {cut} must not parse"
        );
    }
}

#[test]
fn missing_ids_are_typed_errors() {
    let no_species_id = r#"<sbml><model id="x">
      <listOfSpecies><species initialConcentration="1"/></listOfSpecies>
    </model></sbml>"#;
    assert!(err(no_species_id).message.contains("species without id"));
    let bad_number = r#"<sbml><model id="x">
      <listOfSpecies><species id="A" initialConcentration="lots"/></listOfSpecies>
    </model></sbml>"#;
    assert!(err(bad_number).message.contains("bad numeric attribute"));
}

#[test]
fn duplicate_species_id_rejected() {
    let src = r#"<sbml><model id="d">
      <listOfSpecies>
        <species id="A" initialConcentration="1"/>
        <species id="A" initialConcentration="2"/>
      </listOfSpecies>
    </model></sbml>"#;
    assert!(err(src).message.contains("duplicate species id `A`"));
}

#[test]
fn duplicate_parameter_id_rejected() {
    let src = r#"<sbml><model id="d">
      <listOfParameters>
        <parameter id="k" value="1"/>
        <parameter id="k" value="2"/>
      </listOfParameters>
    </model></sbml>"#;
    assert!(err(src).message.contains("duplicate id `k`"));
}

#[test]
fn parameter_colliding_with_species_rejected() {
    // Species and parameters share the ODE variable namespace; a
    // parameter named after a species would alias its slot.
    let src = r#"<sbml><model id="d">
      <listOfSpecies><species id="A" initialConcentration="1"/></listOfSpecies>
      <listOfParameters><parameter id="A" value="3"/></listOfParameters>
    </model></sbml>"#;
    assert!(err(src).message.contains("duplicate id `A`"));
}

#[test]
fn duplicate_reaction_id_rejected() {
    let src = r#"<sbml><model id="d">
      <listOfSpecies><species id="A" initialConcentration="1"/></listOfSpecies>
      <listOfReactions>
        <reaction id="r">
          <listOfReactants><speciesReference species="A"/></listOfReactants>
          <kineticLaw><math><ci>A</ci></math></kineticLaw>
        </reaction>
        <reaction id="r">
          <listOfProducts><speciesReference species="A"/></listOfProducts>
          <kineticLaw><math><ci>A</ci></math></kineticLaw>
        </reaction>
      </listOfReactions>
    </model></sbml>"#;
    assert!(err(src).message.contains("duplicate reaction id `r`"));
}

#[test]
fn valid_documents_still_parse() {
    // The new uniqueness pass must not reject legitimate models.
    let src = r#"<sbml><model id="ok">
      <listOfSpecies>
        <species id="A" initialConcentration="1"/>
        <species id="B" initialConcentration="0"/>
      </listOfSpecies>
      <listOfParameters><parameter id="k" value="0.5"/></listOfParameters>
      <listOfReactions>
        <reaction id="r1">
          <listOfReactants><speciesReference species="A"/></listOfReactants>
          <listOfProducts><speciesReference species="B"/></listOfProducts>
          <kineticLaw><math><apply><times/><ci>k</ci><ci>A</ci></apply></math></kineticLaw>
        </reaction>
      </listOfReactions>
    </model></sbml>"#;
    let m = SbmlModel::parse(src).expect("valid model parses");
    assert_eq!(m.species.len(), 2);
    assert_eq!(m.reactions.len(), 1);
    m.to_ode().expect("valid model converts");
}
