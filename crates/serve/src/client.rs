//! A blocking wire-protocol client: one request out, one response in.
//!
//! Used by the daemon smoke tests, the CI scripted batch, and the
//! bench load generator. The client is deliberately synchronous —
//! pipelining is achieved by opening more clients (the daemon serves
//! each connection on its own thread and admits work FIFO).

use crate::json::{parse_json, Json};
use crate::wire::{ModelSource, QueryRequest, Request};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One decoded query response.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// Was the report served from the result cache?
    pub cached: bool,
    /// The server-computed [`Report::fingerprint`](biocheck_engine::Report::fingerprint).
    pub fingerprint: String,
    /// The full `"report"` payload.
    pub report: Json,
}

/// A blocking connection to a `biocheckd` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads its response object. Protocol errors
    /// (`ok: false`) are returned as `Err` with the server's message.
    pub fn request(&mut self, request: &Request) -> Result<Json, String> {
        let line = request.to_json().render();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        if reply.is_empty() {
            return Err("connection closed".into());
        }
        let json = parse_json(reply.trim())?;
        match json.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(json),
            Some(false) => Err(json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server error")
                .to_string()),
            None => Err(format!("malformed response: {reply}")),
        }
    }

    /// Registers a model; returns its fingerprint.
    pub fn register(&mut self, model: &str, source: &ModelSource) -> Result<String, String> {
        let reply = self.request(&Request::Register {
            model: model.to_string(),
            source: source.clone(),
        })?;
        reply
            .get("fingerprint")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "register response missing fingerprint".into())
    }

    /// Runs one query.
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryReply, String> {
        let reply = self.request(&Request::Query(request.clone()))?;
        let report = reply
            .get("report")
            .cloned()
            .ok_or("query response missing report")?;
        Ok(QueryReply {
            cached: reply
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or("query response missing cached")?,
            fingerprint: report
                .get("fingerprint")
                .and_then(Json::as_str)
                .ok_or("report missing fingerprint")?
                .to_string(),
            report,
        })
    }

    /// Fetches the statistics payload.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.request(&Request::Stats)?
            .get("stats")
            .cloned()
            .ok_or_else(|| "stats response missing stats".into())
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), String> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Cancels the in-flight query with the given id; returns whether
    /// the daemon found one.
    pub fn cancel(&mut self, id: u64) -> Result<bool, String> {
        self.request(&Request::Cancel { id })?
            .get("cancelled")
            .and_then(Json::as_bool)
            .ok_or_else(|| "cancel response missing cancelled".into())
    }

    /// Asks the daemon to stop accepting connections.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}
