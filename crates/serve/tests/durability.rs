//! Durability and self-governance: registry-log crash recovery with no
//! client re-registration, arena/artifact caps with evict-and-rebuild
//! determinism (bit-identical to uncapped serving — the CI
//! determinism matrix re-runs this suite at 1/2/8 pool threads), the
//! 10k-literal sweep staying under the arena cap gauge-verifiably, and
//! the hung-query watchdog reaping an overrunning execution.

use biocheck_serve::server::{ServeConfig, ServeCore, ServeError};
use biocheck_serve::wire::{
    BudgetSpec, DistSpec, MethodSpec, ModelSource, PropSpec, QueryRequest, QuerySpec, SmcSpecWire,
};
use biocheck_serve::Json;
use std::sync::Arc;
use std::time::Duration;

fn decay_source() -> ModelSource {
    ModelSource {
        states: vec![("x".into(), "-k*x".into())],
        consts: vec![("k".into(), 1.0)],
    }
}

fn estimate(expr: &str, seed: u64, n: usize) -> QueryRequest {
    QueryRequest {
        model: "decay".into(),
        id: None,
        seed,
        budget: BudgetSpec::default(),
        query: QuerySpec::Estimate {
            smc: SmcSpecWire {
                init: vec![DistSpec::Uniform(0.5, 1.5)],
                params: vec![],
                property: PropSpec::Eventually {
                    bound: 0.01,
                    inner: Box::new(PropSpec::Prop {
                        expr: expr.into(),
                        rel: biocheck_expr::RelOp::Ge,
                    }),
                },
                t_end: 0.01,
            },
            method: MethodSpec::Fixed { n },
        },
        trace: false,
    }
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("biocheck-durability-{name}-{}", std::process::id()));
    p
}

fn session_gauge(core: &ServeCore, key: &str) -> usize {
    core.stats_json()
        .get("sessions")
        .and_then(|s| s.get(key))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("stats.sessions.{key} missing"))
}

/// The crash-transparency invariant: drop a core holding both logs
/// (SIGKILL between requests — appends are flushed per record, nothing
/// else was synced), restart from the files alone, and the new core
/// serves the same model under the same fingerprint with every
/// memoized result warm — no re-registration anywhere.
#[test]
fn registry_log_restores_serving_state_after_kill() {
    let registry_path = tmp_path("registry-restore");
    let persist_path = tmp_path("cache-restore");
    let _ = std::fs::remove_file(&registry_path);
    let _ = std::fs::remove_file(&persist_path);
    let config = ServeConfig {
        registry: Some(registry_path.clone()),
        persist: Some(persist_path.clone()),
        ..ServeConfig::default()
    };
    let mut fingerprints = Vec::new();
    let model_fp;
    {
        let core = ServeCore::new(config.clone());
        model_fp = core.register("decay", &decay_source()).unwrap();
        for seed in 0..5u64 {
            let (r, _) = core.run_query(&estimate("x - 1", seed, 30)).unwrap();
            fingerprints.push(r.fingerprint());
        }
        // Re-registering the same source must not grow the log.
        core.register("decay", &decay_source()).unwrap();
        assert_eq!(core.registry_persist_stats().unwrap().appended, 1);
    }

    let warm = ServeCore::new(config);
    let stats = warm.registry_persist_stats().unwrap();
    assert_eq!(stats.loaded, 1, "the registration replayed from the log");
    let entry = warm
        .registry()
        .get("decay")
        .expect("model restored without any client register");
    assert_eq!(
        entry.fingerprint(),
        model_fp,
        "replayed fingerprint identical — persisted cache keys stay reachable"
    );
    for (seed, fp) in fingerprints.iter().enumerate() {
        let (r, cached) = warm.run_query(&estimate("x - 1", seed as u64, 30)).unwrap();
        assert!(cached, "restart must be warm for seed {seed}");
        assert_eq!(&r.fingerprint(), fp, "reply identical across the crash");
    }
    let _ = std::fs::remove_file(&registry_path);
    let _ = std::fs::remove_file(&persist_path);
}

/// The evict-and-rebuild determinism property: a capped core forced
/// through many arena-cap rebuilds mid-sweep answers every query
/// bit-identically to an unbounded core (and to cache hits of its own
/// earlier answers).
#[test]
fn cap_rebuilds_preserve_bit_identical_results() {
    let capped = ServeCore::new(ServeConfig {
        // Tight enough that a sweep of novel literals breaches it over
        // and over; the decay model itself needs only a handful.
        max_arena_nodes: Some(60),
        ..ServeConfig::default()
    });
    let uncapped = ServeCore::new(ServeConfig::default());
    capped.register("decay", &decay_source()).unwrap();
    uncapped.register("decay", &decay_source()).unwrap();

    let sweep: Vec<QueryRequest> = (0..40)
        .map(|i| estimate(&format!("x - 0.{:03}", 500 + i), 42, 25))
        .collect();
    let mut cold = Vec::new();
    for qr in &sweep {
        let (capped_r, cached) = capped.run_query(qr).unwrap();
        assert!(!cached);
        let (uncapped_r, _) = uncapped.run_query(qr).unwrap();
        assert_eq!(
            capped_r.fingerprint(),
            uncapped_r.fingerprint(),
            "governed session diverged from unbounded session"
        );
        cold.push(capped_r.fingerprint());
    }
    let m = capped.registry().memory_stats();
    assert!(
        m.cap_rebuilds > 0,
        "sweep never breached the cap — proves nothing"
    );
    assert!(m.arena_nodes_high_water <= 60, "gauge above the cap");
    // Earlier answers stay reachable and identical: canonical cache
    // keys are text-based, so a rebuilt arena changes no key.
    for (qr, fp) in sweep.iter().zip(&cold) {
        let (hit, cached) = capped.run_query(qr).unwrap();
        assert!(cached, "rebuilds must not invalidate memoized results");
        assert_eq!(&hit.fingerprint(), fp);
    }
    assert_eq!(uncapped.registry().memory_stats().cap_rebuilds, 0);
}

/// The artifact cap evicts least-recently-used compiled plans and
/// samplers once the vocabulary is stable (a new-vocabulary query
/// rebuilds the session and starts the artifact cache empty anyway),
/// and evicted artifacts recompile bit-identically on next use.
#[test]
fn artifact_cap_evicts_lru_and_recompiles_identically() {
    let capped = ServeCore::new(ServeConfig {
        max_artifacts: Some(4),
        ..ServeConfig::default()
    });
    let uncapped = ServeCore::new(ServeConfig::default());
    capped.register("decay", &decay_source()).unwrap();
    uncapped.register("decay", &decay_source()).unwrap();

    let props: Vec<String> = (0..8).map(|i| format!("x - 0.{:03}", 900 + i)).collect();
    // Pass 1 interns every property's vocabulary (each rebuild starts
    // the artifact cache fresh); pass 2 runs over a stable arena, so
    // artifacts accumulate — two (plan + sampler) per property — and
    // the cap starts evicting.
    for seed in [42u64, 43] {
        for p in &props {
            let (c, _) = capped.run_query(&estimate(p, seed, 20)).unwrap();
            let (u, _) = uncapped.run_query(&estimate(p, seed, 20)).unwrap();
            assert_eq!(c.fingerprint(), u.fingerprint());
        }
    }
    let m = capped.registry().memory_stats();
    assert!(
        m.artifact_evictions > 0,
        "artifact cap never enforced — proves nothing"
    );
    assert!(m.artifact_count_high_water <= 4, "gauge above the cap");
    assert_eq!(m.cap_rebuilds, 0, "no arena cap in this test");
    // Fresh seeds force recompiles of evicted artifacts: identical.
    for p in &props {
        let (c, cached) = capped.run_query(&estimate(p, 44, 20)).unwrap();
        assert!(!cached);
        let (u, _) = uncapped.run_query(&estimate(p, 44, 20)).unwrap();
        assert_eq!(
            c.fingerprint(),
            u.fingerprint(),
            "recompiled artifact diverged for {p}"
        );
    }
}

/// The acceptance-criteria sweep: 10k distinct literals against a
/// capped session. Arena growth is what `prepare` does (no execution
/// needed to grow the arena), so the sweep drives `prepare` directly
/// and verifies the high-water gauge never passed the cap.
#[test]
fn ten_thousand_literal_sweep_stays_under_arena_cap() {
    let core = ServeCore::new(ServeConfig {
        max_arena_nodes: Some(120),
        max_artifacts: Some(8),
        ..ServeConfig::default()
    });
    core.register("decay", &decay_source()).unwrap();
    let entry = core.registry().get("decay").unwrap();
    for i in 0..10_000u32 {
        let qr = estimate(&format!("x - 0.{i:05}"), 1, 10);
        entry
            .prepare(|cx| qr.query.build(cx))
            .expect("sweep query must lower");
    }
    let m = core.registry().memory_stats();
    assert!(
        m.arena_nodes_high_water <= 120,
        "high water {} exceeded the cap",
        m.arena_nodes_high_water
    );
    assert!(m.arena_nodes <= 120);
    assert!(m.cap_rebuilds > 0, "a 10k sweep must have breached the cap");
    assert_eq!(session_gauge(&core, "arena_nodes_high_water"), {
        m.arena_nodes_high_water
    });
    assert_eq!(session_gauge(&core, "cap_rebuilds"), m.cap_rebuilds);
    // The gauges are on the metrics exposition too.
    let text = core.metrics_text();
    assert!(text.contains("biocheckd_session_arena_nodes_high_water"));
    assert!(text.contains("biocheckd_session_cap_rebuilds_total"));
}

/// The watchdog reaps a genuinely overrunning execution: a typed
/// `watchdog_cancelled` error (not a silently truncated report), the
/// counter moves, and nothing poisoned lands in the cache.
#[test]
fn watchdog_cancels_overrunning_query() {
    let core = ServeCore::new(ServeConfig {
        max_execute: Some(Duration::from_millis(1)),
        ..ServeConfig::default()
    });
    core.register("decay", &decay_source()).unwrap();
    // Big enough that execution is still running when the ~1 ms
    // ceiling trips; the engine polls the raised token between batches
    // and unwedges long before the full run would finish.
    let big = QueryRequest {
        model: "decay".into(),
        id: None,
        seed: 5,
        budget: BudgetSpec::default(),
        query: QuerySpec::Estimate {
            smc: SmcSpecWire {
                init: vec![DistSpec::Uniform(0.5, 1.5)],
                params: vec![],
                property: PropSpec::Eventually {
                    bound: 2.0,
                    inner: Box::new(PropSpec::Prop {
                        expr: "x - 0.25".into(),
                        rel: biocheck_expr::RelOp::Ge,
                    }),
                },
                t_end: 2.0,
            },
            method: MethodSpec::Fixed { n: 400_000 },
        },
        trace: false,
    };
    match core.run_query(&big) {
        Err(ServeError::WatchdogCancelled {
            elapsed_ms,
            ceiling_ms,
        }) => {
            assert_eq!(ceiling_ms, 1);
            assert!(elapsed_ms >= 1, "reaped before the ceiling");
        }
        other => panic!("expected watchdog_cancelled, got {other:?}"),
    }
    assert_eq!(core.watchdog_cancelled_count(), 1);
    assert_eq!(core.scheduler().in_flight(), 0, "permit released");
    // The reaped run was impure: nothing cached under its key.
    assert_eq!(core.cache_stats().inserts, 0);
    // Observability: the error kind string and the counter are wired
    // through the JSON stats and the Prometheus exposition.
    assert_eq!(
        ServeError::WatchdogCancelled {
            elapsed_ms: 1,
            ceiling_ms: 1
        }
        .kind(),
        "watchdog_cancelled"
    );
    let stats = core.stats_json();
    assert_eq!(
        stats
            .get("server")
            .and_then(|s| s.get("watchdog_cancelled"))
            .and_then(Json::as_usize),
        Some(1)
    );
    assert!(core
        .metrics_text()
        .contains("biocheckd_watchdog_cancelled_total 1"));
    // A small query on the same core is untouched by the watchdog's
    // history and still memoizes.
    let (r, cached) = core.run_query(&estimate("x - 1", 3, 20)).unwrap();
    assert!(!cached);
    let (hit, cached) = core.run_query(&estimate("x - 1", 3, 20)).unwrap();
    assert!(cached);
    assert_eq!(r.fingerprint(), hit.fingerprint());
}

/// Concurrent sweeps against one governed model: rebuilds and
/// evictions race with in-flight prepares across threads, and every
/// reply still matches the unbounded reference.
#[test]
fn concurrent_capped_sweeps_match_unbounded_reference() {
    let reference = ServeCore::new(ServeConfig::default());
    reference.register("decay", &decay_source()).unwrap();
    let mut expected = Vec::new();
    let sweep: Vec<QueryRequest> = (0..24)
        .map(|i| estimate(&format!("x - 0.{:03}", 700 + i), 9, 20))
        .collect();
    for qr in &sweep {
        expected.push(reference.run_query(qr).unwrap().0.fingerprint());
    }

    let capped = Arc::new(ServeCore::new(ServeConfig {
        max_arena_nodes: Some(30),
        max_artifacts: Some(3),
        concurrency: 4,
        ..ServeConfig::default()
    }));
    capped.register("decay", &decay_source()).unwrap();
    let sweep = Arc::new(sweep);
    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let (core, sweep, expected) = (
                Arc::clone(&capped),
                Arc::clone(&sweep),
                Arc::clone(&expected),
            );
            std::thread::spawn(move || {
                // Each thread walks the sweep from a different offset so
                // rebuilds interleave with other threads' prepares.
                for i in 0..sweep.len() {
                    let j = (i + t * 3) % sweep.len();
                    let (r, _) = core.run_query(&sweep[j]).unwrap();
                    assert_eq!(
                        r.fingerprint(),
                        expected[j],
                        "capped concurrent sweep diverged on query {j}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("sweep thread panicked");
    }
    let m = capped.registry().memory_stats();
    assert!(m.cap_rebuilds > 0, "no rebuild raced — proves nothing");
    assert!(m.arena_nodes_high_water <= 30);
}
