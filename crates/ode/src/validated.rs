//! Validated interval integration: rigorous enclosures of *all*
//! trajectories emanating from a box of initial states and parameters.
//!
//! Each step finds an a-priori enclosure `B ⊇ {y(s) : s ∈ [t, t+h]}` by
//! Picard–Lindelöf iteration (`B' = Y + [0,h]·F(B)`, accepted when
//! `B' ⊆ B`), then tightens the step endpoint with both the first-order
//! mean-value form `Y + h·F(B)` and, when a Jacobian is available, the
//! Taylor-2 form `Y + h·F(Y) + h²/2·J(B)·F(B)`, intersecting the two.

use biocheck_expr::{Context, Program, VarId};
use biocheck_interval::{IBox, Interval};
use std::error::Error;
use std::fmt;

use crate::system::OdeSystem;

/// Failure of validated integration.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// The enclosure grew past the configured width bound at time `t`.
    WidthExplosion {
        /// Time at which the tube became too wide.
        t: f64,
    },
    /// No a-priori enclosure could be certified even at the minimum step.
    StepUnderflow {
        /// Time at which progress stalled.
        t: f64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WidthExplosion { t } => {
                write!(f, "enclosure width exploded at t = {t}")
            }
            ValidationError::StepUnderflow { t } => {
                write!(f, "validated step underflow at t = {t}")
            }
        }
    }
}

impl Error for ValidationError {}

/// One accepted validated step.
#[derive(Clone, Debug)]
pub struct TubeStep {
    /// Step start time (relative to flow start).
    pub t0: f64,
    /// Step end time.
    pub t1: f64,
    /// Enclosure of all trajectories over the whole window `[t0, t1]`.
    pub range: IBox,
    /// Enclosure of the states exactly at `t1`.
    pub end: IBox,
}

/// A validated flow tube: consecutive step enclosures covering `[0, T]`.
#[derive(Clone, Debug)]
pub struct FlowTube {
    /// Initial box (time 0).
    pub start: IBox,
    /// Accepted steps in time order.
    pub steps: Vec<TubeStep>,
    /// `true` when the tube was truncated before the requested duration
    /// (by an invariant or a validation failure).
    pub truncated: bool,
}

impl FlowTube {
    /// Enclosure of states at the exact end of the tube.
    pub fn end(&self) -> &IBox {
        self.steps.last().map(|s| &s.end).unwrap_or(&self.start)
    }

    /// Duration actually covered.
    pub fn duration(&self) -> f64 {
        self.steps.last().map(|s| s.t1).unwrap_or(0.0)
    }

    /// Hull of all state enclosures over time windows intersecting
    /// `[t_lo, t_hi]` (∅-box of the right dimension when none intersect).
    pub fn states_over(&self, t_lo: f64, t_hi: f64) -> IBox {
        let mut acc: Option<IBox> = None;
        if t_lo <= 0.0 {
            acc = Some(self.start.clone());
        }
        for s in &self.steps {
            if s.t1 >= t_lo && s.t0 <= t_hi {
                acc = Some(match acc {
                    None => s.range.clone(),
                    Some(a) => a.hull(&s.range),
                });
            }
        }
        acc.unwrap_or_else(|| IBox::uniform(self.start.len(), Interval::EMPTY))
    }

    /// The hull of time windows whose enclosure intersects `target`,
    /// or `None` when the target is unreachable anywhere on the tube.
    pub fn times_reaching(&self, target: &IBox) -> Option<Interval> {
        let mut acc: Option<Interval> = None;
        if !self.start.intersect(target).is_empty() {
            acc = Some(Interval::ZERO);
        }
        for s in &self.steps {
            if !s.range.intersect(target).is_empty() {
                let w = Interval::new(s.t0, s.t1);
                acc = Some(match acc {
                    None => w,
                    Some(a) => a.hull(&w),
                });
            }
        }
        acc
    }
}

/// Validated integrator for an [`OdeSystem`].
#[derive(Clone, Debug)]
pub struct ValidatedOde {
    prog: Program,
    jac: Option<Program>,
    states: Vec<VarId>,
    /// Number of context variables at compile time (environment arity).
    pub env_len: usize,
    /// Base step size.
    pub h0: f64,
    /// Minimum step before giving up.
    pub h_min: f64,
    /// Abort when any state enclosure exceeds this width.
    pub max_width: f64,
    /// Hard cap on accepted steps per flow.
    pub max_steps: usize,
}

impl ValidatedOde {
    /// Compiles a validated integrator *with* Jacobian-based Taylor-2
    /// tightening (requires differentiable right-hand sides).
    pub fn new(cx: &mut Context, sys: &OdeSystem) -> ValidatedOde {
        let vars = sys.states.clone();
        let mut entries = Vec::with_capacity(vars.len() * vars.len());
        for &e in &sys.rhs {
            for &v in &vars {
                entries.push(cx.diff(e, v));
            }
        }
        let jac = Program::compile(cx, &entries);
        ValidatedOde {
            prog: Program::compile(cx, &sys.rhs),
            jac: Some(jac),
            states: vars,
            env_len: cx.num_vars(),
            h0: 0.05,
            h_min: 1e-9,
            max_width: 1e3,
            max_steps: 100_000,
        }
    }

    /// Compiles a first-order-only validated integrator (no Jacobian);
    /// works for non-smooth right-hand sides (`min`/`max`/`abs`).
    pub fn first_order(cx: &Context, sys: &OdeSystem) -> ValidatedOde {
        ValidatedOde {
            prog: Program::compile(cx, &sys.rhs),
            jac: None,
            states: sys.states.clone(),
            env_len: cx.num_vars(),
            h0: 0.05,
            h_min: 1e-9,
            max_width: 1e3,
            max_steps: 100_000,
        }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.states.len()
    }

    /// The state variables (environment slots).
    pub fn states(&self) -> &[VarId] {
        &self.states
    }

    /// Evaluates `F` over a state box, with parameters from `env`.
    fn eval_f(&self, env: &mut IBox, y: &IBox, out: &mut [Interval]) {
        for (&v, i) in self.states.iter().zip(0..) {
            env[v.index()] = y[i];
        }
        self.prog.eval_interval_into(env, out);
    }

    fn eval_jac(&self, env: &mut IBox, y: &IBox, out: &mut [Interval]) {
        for (&v, i) in self.states.iter().zip(0..) {
            env[v.index()] = y[i];
        }
        self.jac
            .as_ref()
            .expect("jacobian program present")
            .eval_interval_into(env, out);
    }

    /// One validated step of size ≤ `h` from `y`. Returns
    /// `(accepted h, range enclosure, end enclosure)`.
    ///
    /// The endpoint uses a first-order Lohner-style mean-value form: the
    /// midpoint solution is propagated as a thin set and the initial-set
    /// spread is transported by an enclosure `W(h) ∈ I + h·J(B)·W̃` of the
    /// variational (sensitivity) matrix. For dissipative dynamics
    /// (negative-definite `J`) this is a *contraction*, so tubes do not
    /// balloon the way the naive `Y + h·F(B)` form does.
    fn step(&self, env: &mut IBox, y: &IBox, mut h: f64) -> Option<(f64, IBox, IBox)> {
        let n = self.dim();
        let mut f_y = vec![Interval::ZERO; n];
        self.eval_f(env, y, &mut f_y);
        if f_y.iter().any(Interval::is_empty) {
            return None;
        }
        'outer: while h >= self.h_min {
            let h_iv = Interval::new(0.0, h);
            // Candidate a-priori enclosure, inflated.
            let mut cand = IBox::new(
                (0..n)
                    .map(|i| {
                        let grow = h_iv * f_y[i];
                        (y[i] + grow).inflate(0.05 * (y[i] + grow).width() + 1e-7)
                    })
                    .collect(),
            );
            let mut f_b = vec![Interval::ZERO; n];
            for _attempt in 0..8 {
                self.eval_f(env, &cand, &mut f_b);
                if f_b.iter().any(Interval::is_empty) {
                    h *= 0.5;
                    continue 'outer;
                }
                let img = IBox::new((0..n).map(|i| y[i] + h_iv * f_b[i]).collect());
                if img.iter().any(|iv| !iv.is_bounded()) {
                    // An unbounded image can never certify a useful
                    // enclosure (hulling would "succeed" with ±∞): the
                    // step is too coarse for the dynamics — halve it.
                    h *= 0.5;
                    continue 'outer;
                }
                if !cand.contains_box(&img) {
                    // Inflate and retry the same h.
                    cand = img.hull(&cand).inflate(0.2 * cand.max_width() + 1e-7);
                    continue;
                }
                // Certified a-priori enclosure; tighten once more.
                let range = img;
                self.eval_f(env, &range, &mut f_b);
                let hh = Interval::point(h);
                // Baseline first-order end (sound but non-contractive).
                let mut end = IBox::new((0..n).map(|i| y[i] + hh * f_b[i]).collect());
                if self.jac.is_some() {
                    if let Some(mv) = self.mean_value_end(env, y, &range, &f_b, h) {
                        let tightened = end.intersect(&mv);
                        if !tightened.is_empty() {
                            end = tightened;
                        }
                    }
                }
                let end = end.intersect(&range);
                if end.is_empty() {
                    // Numerically inconsistent; retry smaller.
                    h *= 0.5;
                    continue 'outer;
                }
                return Some((h, range, end));
            }
            h *= 0.5;
        }
        None
    }

    /// Lohner-style mean-value endpoint:
    /// `Y(h) ⊆ ŷ_m(h) + W(h)·(Y − m)` with `W(h) ∈ I + h·J(B)·W̃`,
    /// where `ŷ_m` flows the midpoint and `W̃` is a Picard enclosure of
    /// the variational matrix over the step.
    fn mean_value_end(
        &self,
        env: &mut IBox,
        y: &IBox,
        range: &IBox,
        f_range: &[Interval],
        h: f64,
    ) -> Option<IBox> {
        let n = self.dim();
        let hh = Interval::point(h);
        // Thin solution from the midpoint m (Taylor-2 over the range box).
        let m = y.midpoint();
        let m_box = IBox::from_point(&m);
        let mut f_m = vec![Interval::ZERO; n];
        self.eval_f(env, &m_box, &mut f_m);
        let mut jb = vec![Interval::ZERO; n * n];
        self.eval_jac(env, range, &mut jb);
        if jb.iter().any(Interval::is_empty) || f_m.iter().any(Interval::is_empty) {
            return None;
        }
        let h2 = Interval::point(0.5 * h * h);
        let e_m: Vec<Interval> = (0..n)
            .map(|i| {
                let mut acc = Interval::ZERO;
                for j in 0..n {
                    acc += jb[i * n + j] * f_range[j];
                }
                Interval::point(m[i]) + hh * f_m[i] + h2 * acc
            })
            .collect();
        // Variational enclosure: W̃ with W̃ ⊇ I + [0,h]·J(B)·W̃ (Picard).
        let h_iv = Interval::new(0.0, h);
        let m_mat: Vec<Interval> = jb.iter().map(|&j| h_iv * j).collect();
        let ident = |i: usize, j: usize| {
            if i == j {
                Interval::ONE
            } else {
                Interval::ZERO
            }
        };
        // Candidate: I + M, inflated.
        let mut w_tilde: Vec<Interval> = (0..n * n)
            .map(|k| (ident(k / n, k % n) + m_mat[k]).inflate(1e-6))
            .collect();
        let mut certified = false;
        for _ in 0..4 {
            // img = I + M·W̃
            let mut img = vec![Interval::ZERO; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = ident(i, j);
                    for l in 0..n {
                        acc += m_mat[i * n + l] * w_tilde[l * n + j];
                    }
                    img[i * n + j] = acc;
                }
            }
            let contained = img
                .iter()
                .zip(&w_tilde)
                .all(|(a, b)| b.contains_interval(a));
            if contained {
                w_tilde = img;
                certified = true;
                break;
            }
            // Inflate the hull and retry.
            w_tilde = img
                .iter()
                .zip(&w_tilde)
                .map(|(a, b)| a.hull(b).inflate(0.1 * a.hull(b).width() + 1e-9))
                .collect();
        }
        if !certified {
            return None;
        }
        // W(h) = I + h·J(B)·W̃ (exact step h, not [0,h]).
        let mut wh = vec![Interval::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = ident(i, j);
                for l in 0..n {
                    acc += hh * jb[i * n + l] * w_tilde[l * n + j];
                }
                wh[i * n + j] = acc;
            }
        }
        // e_m + W(h)·(Y − m)
        Some(IBox::new(
            (0..n)
                .map(|i| {
                    let mut acc = e_m[i];
                    for j in 0..n {
                        acc += wh[i * n + j] * (y[j] - Interval::point(m[j]));
                    }
                    acc
                })
                .collect(),
        ))
    }

    /// Flows the box `y0` for `duration`, producing a tube. Parameters are
    /// read from `env` (a full-context box; state dims are overwritten).
    ///
    /// # Errors
    ///
    /// [`ValidationError::StepUnderflow`] when no step can be certified,
    /// [`ValidationError::WidthExplosion`] when the tube outgrows
    /// `max_width`.
    pub fn flow(&self, env: &IBox, y0: &IBox, duration: f64) -> Result<FlowTube, ValidationError> {
        assert_eq!(y0.len(), self.dim(), "initial box dimension mismatch");
        let mut env = env.clone();
        let mut tube = FlowTube {
            start: y0.clone(),
            steps: Vec::new(),
            truncated: false,
        };
        let mut t = 0.0;
        let mut y = y0.clone();
        let mut steps = 0;
        while t < duration {
            steps += 1;
            if steps > self.max_steps {
                tube.truncated = true;
                return Ok(tube);
            }
            let h_try = self.h0.min(duration - t);
            match self.step(&mut env, &y, h_try) {
                Some((h, range, end)) => {
                    let mut t1 = t + h;
                    // Snap the final step onto the requested duration so
                    // point queries at exactly `duration` always hit a
                    // window (guards against 1-ulp accumulation drift).
                    if (duration - t1).abs() <= 1e-12 * (1.0 + duration.abs()) {
                        t1 = duration;
                    }
                    tube.steps.push(TubeStep {
                        t0: t,
                        t1,
                        range,
                        end: end.clone(),
                    });
                    t = t1;
                    y = end;
                    if y.max_width() > self.max_width {
                        // Stop here but keep the certified prefix: callers
                        // (the flow contractor) can still prune with it,
                        // e.g. when an invariant caps the dwell earlier.
                        tube.truncated = true;
                        return Ok(tube);
                    }
                }
                None => {
                    if tube.steps.is_empty() {
                        return Err(ValidationError::StepUnderflow { t });
                    }
                    tube.truncated = true;
                    return Ok(tube);
                }
            }
        }
        Ok(tube)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rk::DormandPrince;
    use crate::system::OdeSystem;

    fn decay(cx: &mut Context) -> OdeSystem {
        let x = cx.intern_var("x");
        let rhs = cx.parse("-x").unwrap();
        OdeSystem::new(vec![x], vec![rhs])
    }

    #[test]
    fn tube_encloses_point_solutions() {
        let mut cx = Context::new();
        let sys = decay(&mut cx);
        let v = ValidatedOde::new(&mut cx, &sys);
        let env = IBox::uniform(cx.num_vars(), Interval::ZERO);
        let y0 = IBox::new(vec![Interval::new(0.8, 1.2)]);
        let tube = v.flow(&env, &y0, 1.0).unwrap();
        assert!(!tube.truncated);
        assert!((tube.duration() - 1.0).abs() < 1e-9);
        // Exact solutions x0·e^{-t} must lie inside every step enclosure.
        for x0 in [0.8, 0.95, 1.2] {
            for s in &tube.steps {
                for frac in [0.0, 0.5, 1.0] {
                    let t = s.t0 + frac * (s.t1 - s.t0);
                    let exact = x0 * (-t).exp();
                    assert!(
                        s.range.contains_point(&[exact]),
                        "t={t}, x0={x0}: {exact} ∉ {:?}",
                        s.range
                    );
                }
                let exact_end = x0 * (-s.t1).exp();
                assert!(s.end.contains_point(&[exact_end]));
            }
        }
        // End box brackets [0.8e⁻¹, 1.2e⁻¹].
        let end = tube.end();
        assert!(end.contains_point(&[0.8 * (-1.0f64).exp()]));
        assert!(end.contains_point(&[1.2 * (-1.0f64).exp()]));
    }

    #[test]
    fn taylor2_tightens_versus_first_order() {
        let mut cx = Context::new();
        let sys = decay(&mut cx);
        let v2 = ValidatedOde::new(&mut cx, &sys);
        let v1 = ValidatedOde::first_order(&cx, &sys);
        let env = IBox::uniform(cx.num_vars(), Interval::ZERO);
        let y0 = IBox::new(vec![Interval::new(1.0, 1.0)]);
        let t2 = v2.flow(&env, &y0, 1.0).unwrap();
        let t1 = v1.flow(&env, &y0, 1.0).unwrap();
        assert!(
            t2.end()[0].width() <= t1.end()[0].width() + 1e-12,
            "Taylor-2 {:?} vs first-order {:?}",
            t2.end()[0],
            t1.end()[0]
        );
    }

    #[test]
    fn oscillator_tube_contains_circle() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let vv = cx.intern_var("v");
        let dx = cx.var_node(vv);
        let xn = cx.var_node(x);
        let dv = cx.neg(xn);
        let sys = OdeSystem::new(vec![x, vv], vec![dx, dv]);
        let v = ValidatedOde::new(&mut cx, &sys);
        let env = IBox::uniform(cx.num_vars(), Interval::ZERO);
        let y0 = IBox::from_point(&[1.0, 0.0]);
        let tube = v.flow(&env, &y0, 1.5).unwrap();
        for s in &tube.steps {
            let t = s.t1;
            assert!(
                s.end.contains_point(&[t.cos(), -t.sin()]),
                "t={t}: {:?}",
                s.end
            );
        }
    }

    #[test]
    fn parameterized_flow_uses_env() {
        // x' = -k x with k ∈ [0.5, 1.0]; tube must cover both extremes.
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let _k = cx.intern_var("k");
        let rhs = cx.parse("-k * x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        let v = ValidatedOde::new(&mut cx, &sys);
        let mut env = IBox::uniform(cx.num_vars(), Interval::ZERO);
        let k_id = cx.var_id("k").unwrap();
        env[k_id.index()] = Interval::new(0.5, 1.0);
        let y0 = IBox::from_point(&[1.0]);
        let tube = v.flow(&env, &y0, 1.0).unwrap();
        let end = tube.end();
        assert!(end.contains_point(&[(-0.5f64).exp()]));
        assert!(end.contains_point(&[(-1.0f64).exp()]));
    }

    #[test]
    fn tube_queries() {
        let mut cx = Context::new();
        let sys = decay(&mut cx);
        let v = ValidatedOde::new(&mut cx, &sys);
        let env = IBox::uniform(cx.num_vars(), Interval::ZERO);
        let y0 = IBox::from_point(&[1.0]);
        let tube = v.flow(&env, &y0, 2.0).unwrap();
        // states_over a window includes the solution there.
        let w = tube.states_over(0.5, 1.0);
        assert!(w.contains_point(&[(-0.7f64).exp()]));
        // times_reaching around x = e⁻¹ brackets t = 1.
        let target = IBox::new(vec![Interval::new(
            (-1.0f64).exp() - 1e-3,
            (-1.0f64).exp() + 1e-3,
        )]);
        let t = tube.times_reaching(&target).expect("reachable");
        assert!(t.contains(1.0), "{t:?}");
        // An unreachable target yields None.
        let unreachable = IBox::new(vec![Interval::new(5.0, 6.0)]);
        assert!(tube.times_reaching(&unreachable).is_none());
    }

    #[test]
    fn validated_agrees_with_numeric() {
        // Random-ish nonlinear system: tube must contain the DoPri point
        // solution at the end time.
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let y = cx.intern_var("y");
        let r1 = cx.parse("y - x^3").unwrap();
        let r2 = cx.parse("-x - 0.2*y").unwrap();
        let sys = OdeSystem::new(vec![x, y], vec![r1, r2]);
        let vo = ValidatedOde::new(&mut cx, &sys);
        let co = sys.compile(&cx);
        let env_b = IBox::uniform(cx.num_vars(), Interval::ZERO);
        let y0 = [0.5, -0.3];
        let tube = vo.flow(&env_b, &IBox::from_point(&y0), 1.0).unwrap();
        let tr = DormandPrince::default()
            .integrate(&co, &vec![0.0; cx.num_vars()], &y0, (0.0, tube.duration()))
            .unwrap();
        assert!(
            tube.end().contains_point(tr.last_state()),
            "numeric end {:?} outside validated {:?}",
            tr.last_state(),
            tube.end()
        );
    }

    #[test]
    fn zero_duration_flow() {
        let mut cx = Context::new();
        let sys = decay(&mut cx);
        let v = ValidatedOde::new(&mut cx, &sys);
        let env = IBox::uniform(cx.num_vars(), Interval::ZERO);
        let y0 = IBox::new(vec![Interval::new(1.0, 2.0)]);
        let tube = v.flow(&env, &y0, 0.0).unwrap();
        assert_eq!(tube.steps.len(), 0);
        assert_eq!(tube.end(), &y0);
        assert_eq!(tube.duration(), 0.0);
    }

    #[test]
    fn error_display() {
        assert!(ValidationError::WidthExplosion { t: 1.0 }
            .to_string()
            .contains("exploded"));
        assert!(ValidationError::StepUnderflow { t: 1.0 }
            .to_string()
            .contains("underflow"));
    }
}
