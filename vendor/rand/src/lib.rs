//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the narrow slice of the `rand` 0.8 API that BioCheck uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256++
//! seeded through SplitMix64 — not the upstream ChaCha12, but a
//! high-quality deterministic PRNG that satisfies every statistical use
//! in the workspace (SMC sampling, simulated annealing).
//!
//! Determinism contract: for a fixed seed the output stream is stable
//! across platforms and releases of this workspace; parallel SMC relies
//! on that to reproduce sequential verdicts bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Bare random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f64` is
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // Scale by the next-up multiplier so `hi` itself is attainable.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain form is acceptable here, but
                // the widening multiply avoids it entirely for spans
                // well below 2^64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32, i16);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed into the full state, as
        // recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0..=-1.0);
            assert!((-2.0..=-1.0).contains(&v));
            let i = rng.gen_range(0..5usize);
            assert!(i < 5);
            let j = rng.gen_range(10..=12u32);
            assert!((10..=12).contains(&j));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
