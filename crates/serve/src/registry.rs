//! The multi-model session registry: model name → fingerprint + shared
//! [`Session`].
//!
//! A model registers under a name with a textual [`ModelSource`]; its
//! **fingerprint** is a hash of the canonical source, so re-registering
//! the same definition keeps the fingerprint (and every memoized
//! result), while re-registering a *changed* definition rotates it —
//! result-cache keys embed the fingerprint, so stale reports become
//! unreachable by construction (and the server additionally purges
//! them).
//!
//! Queries arrive with expressions in text form and must be lowered
//! into the model's interned [`Context`]. The registry keeps one
//! *master* context per model and hands out a [`Session`] built from a
//! clone of it. Parsing a query may grow the master arena (a formula
//! the model has never seen); the session's clone would not contain the
//! new nodes, so the entry transparently rebuilds the session from a
//! fresh clone whenever the vocabulary grew. Hash-consing makes parsing
//! deterministic — repeated traffic re-parses into the *same* node ids
//! and never triggers a rebuild, so under steady-state serving the
//! session (and all its compiled artifacts) is shared across every
//! request and thread.

pub mod persist;

use crate::wire::ModelSource;
use biocheck_engine::{Query, Session};
use biocheck_expr::Context;
use biocheck_ode::OdeSystem;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// FNV-1a, 64-bit: tiny, dependency-free, stable across runs — exactly
/// what a cache-key fingerprint needs (it is not a defense against
/// adversarial collisions).
pub fn fingerprint64(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Per-model session memory caps. `None` means unbounded (the
/// pre-governance behavior); the daemon exposes them as
/// `--max-arena-nodes` and `--max-artifacts`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionCaps {
    /// Ceiling on a model's master-context arena. A query that grows
    /// the arena past it triggers a rebuild from canonical source: a
    /// fresh minimal context holding the model plus only that query's
    /// vocabulary, so an unbounded literal sweep can no longer grow a
    /// session forever. Results stay bit-identical — reports depend on
    /// query semantics, not node ids.
    pub max_arena_nodes: Option<usize>,
    /// Ceiling on a session's cached compiled artifacts (plans +
    /// samplers); breaches evict least-recently-used artifacts, which
    /// recompile bit-identically on next use.
    pub max_artifacts: Option<usize>,
}

/// Registry-wide governance state shared by every entry: the caps plus
/// high-water gauges and enforcement counters.
#[derive(Default)]
struct Governor {
    caps: SessionCaps,
    arena_high: AtomicUsize,
    artifact_high: AtomicUsize,
    cap_rebuilds: AtomicUsize,
    artifact_evictions: AtomicUsize,
}

/// Snapshot of the registry's memory gauges, surfaced through
/// `{"op":"stats"}` and `{"op":"metrics"}` so cap-driven degradation is
/// observable instead of an OOM kill.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Largest master-context arena across registered models, now.
    pub arena_nodes: usize,
    /// High-water mark of the arena gauge (recorded after cap
    /// enforcement, so a capped sweep's mark stays at or under the cap).
    pub arena_nodes_high_water: usize,
    /// Cached compiled artifacts across registered models, now.
    pub artifact_count: usize,
    /// High-water mark of the artifact gauge (after enforcement).
    pub artifact_count_high_water: usize,
    /// Sessions rebuilt from canonical source by an arena-cap breach.
    pub cap_rebuilds: usize,
    /// Artifacts evicted by the artifact cap.
    pub artifact_evictions: usize,
}

struct EntryInner {
    /// The master context: every query expression parses into this one.
    cx: Context,
    sys: OdeSystem,
    /// Session built from a clone of `cx` taken at `snapshot` state.
    session: Arc<Session>,
    snapshot_nodes: usize,
    snapshot_vars: usize,
    /// Sessions built since registration (1 = never rebuilt).
    builds: usize,
}

/// One registered model.
pub struct ModelEntry {
    name: String,
    fingerprint: String,
    /// The canonical source the model registered with — the rebuild
    /// base for arena-cap enforcement and the payload the registry
    /// persistence log records.
    source: ModelSource,
    /// Parameters pinned as constants at registration. They were
    /// substituted out of the right-hand sides, so randomizing one in
    /// a query would silently have no effect (the server rejects
    /// that); referencing one in a *property* expression substitutes
    /// its pinned value, so `"x - k"` means what the model says it
    /// means rather than silently evaluating `k` as 0.
    consts: Vec<(String, f64)>,
    govern: Arc<Governor>,
    inner: Mutex<EntryInner>,
}

impl ModelEntry {
    /// The model's fingerprint (hash of its canonical source).
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Was `name` pinned as a constant at registration?
    pub fn is_const(&self, name: &str) -> bool {
        self.consts.iter().any(|(n, _)| n == name)
    }

    /// The canonical source the model registered with.
    pub fn source(&self) -> &ModelSource {
        &self.source
    }

    /// How many times the session was (re)built — 1 when every request
    /// reused the original, +1 for each vocabulary growth.
    pub fn session_builds(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .builds
    }

    /// Lowers a wire payload into an engine query with the entry's
    /// master context and returns it with the session to run it on and
    /// its canonical memoization key (fingerprint-prefixed).
    ///
    /// The closure runs under the entry lock; it parses text into the
    /// master context. If parsing grew the arena, the session is
    /// rebuilt from a fresh context clone so every node id the query
    /// references exists in the session. When a [`SessionCaps`] arena
    /// cap is breached — the literal-sweep shape — the master context
    /// itself is rebuilt first, from canonical source, down to the
    /// model plus only this query's vocabulary (the closure re-runs
    /// against the fresh arena; that is why it is `FnMut`). The
    /// artifact cap is enforced here too, evicting LRU artifacts the
    /// previous queries compiled. Both enforcements preserve
    /// bit-identical results; both land in the registry's
    /// [`MemoryStats`] gauges.
    pub fn prepare<E>(
        &self,
        mut build: impl FnMut(&mut Context) -> Result<Query, E>,
    ) -> Result<(Arc<Session>, Query, String), E> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut query = build(&mut inner.cx)?;
        self.substitute_consts(&mut inner.cx, &mut query);
        let over_cap = self
            .govern
            .caps
            .max_arena_nodes
            .is_some_and(|cap| inner.cx.num_nodes() > cap);
        if over_cap {
            // Evict-and-rebuild: re-parse the canonical source into a
            // fresh minimal context and lower the query again into it.
            // The source built at registration, so it builds now — the
            // parse is deterministic.
            let (cx, sys) = self
                .source
                .build()
                .expect("canonical source validated at registration"); // lint: infallible
            inner.cx = cx;
            inner.sys = sys;
            query = build(&mut inner.cx)?;
            self.substitute_consts(&mut inner.cx, &mut query);
            // Force the session rebuild below.
            inner.snapshot_nodes = 0;
            inner.snapshot_vars = 0;
            self.govern.cap_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        if inner.cx.num_nodes() > inner.snapshot_nodes || inner.cx.num_vars() > inner.snapshot_vars
        {
            let session = Arc::new(Session::from_parts(inner.cx.clone(), inner.sys.clone()));
            inner.snapshot_nodes = inner.cx.num_nodes();
            inner.snapshot_vars = inner.cx.num_vars();
            inner.builds += 1;
            inner.session = session;
        }
        if let Some(cap) = self.govern.caps.max_artifacts {
            let evicted = inner.session.evict_artifacts_to(cap);
            if evicted > 0 {
                self.govern
                    .artifact_evictions
                    .fetch_add(evicted, Ordering::Relaxed);
            }
        }
        // Gauges record the post-enforcement state: a capped sweep's
        // high-water mark stays at (or under) the cap.
        self.govern
            .arena_high
            .fetch_max(inner.cx.num_nodes(), Ordering::Relaxed);
        self.govern
            .artifact_high
            .fetch_max(inner.session.artifact_count(), Ordering::Relaxed);
        let key = format!("{}|{}", self.fingerprint, query.canonical(&inner.cx));
        Ok((Arc::clone(&inner.session), query, key))
    }

    /// Replaces registration-time constants inside the query's property
    /// expressions with their pinned values — the right-hand sides had
    /// the same substitution applied at registration, so a property
    /// mentioning `k` evaluates it at the registered value instead of
    /// the sampler's zero-filled environment. Runs before the
    /// vocabulary-growth check (substitution can intern new nodes) and
    /// before canonicalization (so `"x - k"` and the literal it means
    /// share one memoization key).
    fn substitute_consts(&self, cx: &mut Context, query: &mut Query) {
        if self.consts.is_empty() {
            return;
        }
        let smc = match query {
            Query::Estimate { smc, .. }
            | Query::Sprt { smc, .. }
            | Query::Robustness { smc, .. } => smc,
            _ => return,
        };
        let map: HashMap<biocheck_expr::VarId, biocheck_expr::NodeId> = self
            .consts
            .iter()
            .filter_map(|(name, v)| {
                let vid = cx.var_id(name)?;
                let c = cx.constant(*v);
                Some((vid, c))
            })
            .collect();
        smc.property = subst_bltl(cx, &smc.property, &map);
    }
}

fn subst_bltl(
    cx: &mut Context,
    f: &biocheck_bltl::Bltl,
    map: &HashMap<biocheck_expr::VarId, biocheck_expr::NodeId>,
) -> biocheck_bltl::Bltl {
    use biocheck_bltl::Bltl;
    match f {
        Bltl::Prop(a) => Bltl::Prop(biocheck_expr::Atom::new(cx.subst(a.expr, map), a.op)),
        Bltl::Not(inner) => Bltl::Not(Box::new(subst_bltl(cx, inner, map))),
        Bltl::And(fs) => Bltl::And(fs.iter().map(|g| subst_bltl(cx, g, map)).collect()),
        Bltl::Or(fs) => Bltl::Or(fs.iter().map(|g| subst_bltl(cx, g, map)).collect()),
        Bltl::Until { lhs, rhs, bound } => Bltl::Until {
            lhs: Box::new(subst_bltl(cx, lhs, map)),
            rhs: Box::new(subst_bltl(cx, rhs, map)),
            bound: *bound,
        },
    }
}

/// The name → model map. All methods take `&self`.
#[derive(Default)]
pub struct Registry {
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    govern: Arc<Governor>,
}

impl Registry {
    /// An empty registry with unbounded sessions.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// An empty registry whose sessions are governed by `caps`.
    pub fn with_caps(caps: SessionCaps) -> Registry {
        Registry {
            models: RwLock::default(),
            govern: Arc::new(Governor {
                caps,
                ..Governor::default()
            }),
        }
    }

    /// The caps this registry enforces.
    pub fn caps(&self) -> SessionCaps {
        self.govern.caps
    }

    /// Registers (or replaces) a model. Returns the new entry and, when
    /// a previous registration was replaced, the old fingerprint (the
    /// server purges its memoized results).
    pub fn register(
        &self,
        name: &str,
        source: &ModelSource,
    ) -> Result<(Arc<ModelEntry>, Option<String>), String> {
        let (cx, sys) = source.build()?;
        let fingerprint = fingerprint64(&source.canonical());
        let session = Arc::new(Session::from_parts(cx.clone(), sys.clone()));
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            fingerprint,
            source: source.clone(),
            consts: source.consts.clone(),
            govern: Arc::clone(&self.govern),
            inner: Mutex::new(EntryInner {
                snapshot_nodes: cx.num_nodes(),
                snapshot_vars: cx.num_vars(),
                cx,
                sys,
                session,
                builds: 1,
            }),
        });
        let old = self
            .models
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), Arc::clone(&entry));
        let replaced = old
            .filter(|o| o.fingerprint != entry.fingerprint)
            .map(|o| o.fingerprint.clone());
        Ok((entry, replaced))
    }

    /// Current + high-water memory gauges and enforcement counters.
    /// Current values take each entry's lock briefly; the snapshot is
    /// not atomic across models (it is an observability surface, not a
    /// synchronization point).
    pub fn memory_stats(&self) -> MemoryStats {
        let (mut arena_now, mut artifacts_now) = (0usize, 0usize);
        for entry in self
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            let inner = entry.inner.lock().unwrap_or_else(PoisonError::into_inner);
            arena_now = arena_now.max(inner.cx.num_nodes());
            artifacts_now += inner.session.artifact_count();
        }
        MemoryStats {
            arena_nodes: arena_now,
            arena_nodes_high_water: self.govern.arena_high.load(Ordering::Relaxed),
            artifact_count: artifacts_now,
            artifact_count_high_water: self.govern.artifact_high.load(Ordering::Relaxed),
            cap_rebuilds: self.govern.cap_rebuilds.load(Ordering::Relaxed),
            artifact_evictions: self.govern.artifact_evictions.load(Ordering::Relaxed),
        }
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Registered model count.
    pub fn len(&self) -> usize {
        self.models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered `(name, fingerprint)` pairs, sorted by name.
    pub fn list(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|e| (e.name.clone(), e.fingerprint.clone()))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{DistSpec, MethodSpec, PropSpec, QuerySpec, SmcSpecWire};
    use biocheck_expr::RelOp;

    fn decay_source() -> ModelSource {
        ModelSource {
            states: vec![("x".into(), "-k*x".into())],
            consts: vec![("k".into(), 1.0)],
        }
    }

    fn estimate_spec(expr: &str) -> QuerySpec {
        QuerySpec::Estimate {
            smc: SmcSpecWire {
                init: vec![DistSpec::Uniform(0.5, 1.5)],
                params: vec![],
                property: PropSpec::Eventually {
                    bound: 0.01,
                    inner: Box::new(PropSpec::Prop {
                        expr: expr.into(),
                        rel: RelOp::Ge,
                    }),
                },
                t_end: 0.01,
            },
            method: MethodSpec::Fixed { n: 20 },
        }
    }

    #[test]
    fn fingerprint_is_stable_and_source_sensitive() {
        let a = fingerprint64(&decay_source().canonical());
        let b = fingerprint64(&decay_source().canonical());
        assert_eq!(a, b);
        let other = ModelSource {
            states: vec![("x".into(), "-2*k*x".into())],
            consts: vec![("k".into(), 1.0)],
        };
        assert_ne!(a, fingerprint64(&other.canonical()));
    }

    #[test]
    fn canonical_source_cannot_collide_on_smuggled_delimiters() {
        // Two different models whose naive joined rendering would be
        // identical: consts [p=1, q=2] vs one const literally named
        // "p=1,q". JSON-quoted canonicalization keeps them distinct.
        let honest = ModelSource {
            states: vec![("x".into(), "-x".into())],
            consts: vec![("p".into(), 1.0), ("q".into(), 2.0)],
        };
        let smuggler = ModelSource {
            states: vec![("x".into(), "-x".into())],
            consts: vec![("p=1,q".into(), 2.0)],
        };
        assert_ne!(honest.canonical(), smuggler.canonical());
        assert_ne!(
            fingerprint64(&honest.canonical()),
            fingerprint64(&smuggler.canonical())
        );
    }

    #[test]
    fn repeated_vocabulary_reuses_the_session() {
        let reg = Registry::new();
        let (entry, replaced) = reg.register("decay", &decay_source()).unwrap();
        assert!(replaced.is_none());
        let spec = estimate_spec("x - 1");
        let (s1, _, k1) = entry.prepare(|cx| spec.build(cx)).unwrap();
        // First novel formula grows the arena → one rebuild.
        assert_eq!(entry.session_builds(), 2);
        let (s2, _, k2) = entry.prepare(|cx| spec.build(cx)).unwrap();
        assert_eq!(entry.session_builds(), 2, "repeat parse must not rebuild");
        assert!(Arc::ptr_eq(&s1, &s2), "same session served");
        assert_eq!(k1, k2, "same canonical key");
        // A new formula rebuilds once, then stabilizes again.
        let spec2 = estimate_spec("x - 0.8");
        let (s3, _, k3) = entry.prepare(|cx| spec2.build(cx)).unwrap();
        assert_eq!(entry.session_builds(), 3);
        assert!(!Arc::ptr_eq(&s1, &s3));
        assert_ne!(k1, k3);
        let (s4, _, _) = entry
            .prepare(|cx| estimate_spec("x - 1").build(cx))
            .unwrap();
        assert_eq!(entry.session_builds(), 3);
        assert!(Arc::ptr_eq(&s3, &s4));
    }

    #[test]
    fn reregistration_rotates_fingerprint_only_on_change() {
        let reg = Registry::new();
        let (e1, _) = reg.register("m", &decay_source()).unwrap();
        // Same source: same fingerprint, nothing to purge.
        let (e2, replaced) = reg.register("m", &decay_source()).unwrap();
        assert_eq!(e1.fingerprint(), e2.fingerprint());
        assert!(replaced.is_none());
        // Changed source: new fingerprint, old one reported for purging.
        let changed = ModelSource {
            states: vec![("x".into(), "-3*x".into())],
            consts: vec![],
        };
        let (e3, replaced) = reg.register("m", &changed).unwrap();
        assert_ne!(e1.fingerprint(), e3.fingerprint());
        assert_eq!(replaced.as_deref(), Some(e1.fingerprint()));
        assert_eq!(reg.len(), 1);
    }
}
