//! The line-delimited JSON wire protocol: typed requests in, reports
//! out.
//!
//! Every message is one JSON object on one line (`\n`-terminated).
//! Requests carry an `"op"` discriminant; responses always carry
//! `"ok"`. The protocol covers model registration (ODE models from
//! textual right-hand sides), the SMC-backed queries
//! (estimate/sprt/robustness), stability queries, per-request budgets,
//! cooperative cancellation by request id, cache/registry statistics,
//! and shutdown. The full schema is documented in the README's
//! "Serving" section; `Request`/`QuerySpec` are the schema's source of
//! truth.
//!
//! Expressions travel as text and are parsed into the target model's
//! interned [`Context`] on the server, so two textually equal queries
//! resolve to the same compiled artifacts — and to the same
//! memoization key ([`Query::canonical`] renders names, not arena
//! ids).

use crate::json::Json;
use biocheck_bltl::Bltl;
use biocheck_engine::{Budget, EstimateMethod, Query, Report, SmcSpec, Value};
use biocheck_expr::{Atom, Context, RelOp, VarId};
use biocheck_interval::Interval;
use biocheck_ode::OdeSystem;
use biocheck_smc::Dist;
use std::time::Duration;

/// A model registration payload: one `(name, rhs)` pair per state
/// variable (order fixes the state vector) plus constant parameter
/// substitutions applied to every right-hand side at registration.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSource {
    /// `(state name, d state/dt expression)`, in state order.
    pub states: Vec<(String, String)>,
    /// `(parameter name, value)` substituted as constants.
    pub consts: Vec<(String, f64)>,
}

impl ModelSource {
    /// The canonical source string the model fingerprint hashes: the
    /// compact JSON rendering of the source. JSON quoting makes field
    /// boundaries unambiguous — user-supplied names/expressions can
    /// never smuggle a delimiter and make two different models
    /// fingerprint equal (a const named `"p=1,q"` is distinct from
    /// consts `p` and `q`).
    pub fn canonical(&self) -> String {
        self.to_json().render()
    }

    /// Parses the source into a context + system: state variables are
    /// interned first (in order), constants substituted into every RHS.
    pub fn build(&self) -> Result<(Context, OdeSystem), String> {
        if self.states.is_empty() {
            return Err("model needs at least one state".into());
        }
        // Name hygiene: a const sharing a state's name would substitute
        // the state itself out of the dynamics — silently wrong for
        // every subsequent query — and duplicate names within either
        // list hide one of the definitions.
        let mut seen = std::collections::HashSet::new();
        for (name, _) in &self.states {
            if !seen.insert(name.as_str()) {
                return Err(format!("duplicate state {name:?}"));
            }
        }
        for (name, _) in &self.consts {
            if self.states.iter().any(|(s, _)| s == name) {
                return Err(format!(
                    "const {name:?} collides with a state of the same name"
                ));
            }
            if !seen.insert(name.as_str()) {
                return Err(format!("duplicate const {name:?}"));
            }
        }
        let mut cx = Context::new();
        let states: Vec<_> = self
            .states
            .iter()
            .map(|(name, _)| cx.intern_var(name))
            .collect();
        let mut rhs = Vec::with_capacity(self.states.len());
        for (name, src) in &self.states {
            let node = cx.parse(src).map_err(|e| format!("rhs of {name}: {e:?}"))?;
            rhs.push(node);
        }
        if !self.consts.is_empty() {
            let map: std::collections::HashMap<_, _> = self
                .consts
                .iter()
                .map(|(name, v)| {
                    let vid = cx.intern_var(name);
                    let c = cx.constant(*v);
                    (vid, c)
                })
                .collect();
            rhs = rhs.iter().map(|&r| cx.subst(r, &map)).collect();
        }
        Ok((cx, OdeSystem::new(states, rhs)))
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj([
            (
                "states",
                Json::Arr(
                    self.states
                        .iter()
                        .map(|(n, r)| Json::Arr(vec![Json::str(n.clone()), Json::str(r.clone())]))
                        .collect(),
                ),
            ),
            (
                "consts",
                Json::Arr(
                    self.consts
                        .iter()
                        .map(|(n, v)| Json::Arr(vec![Json::str(n.clone()), Json::num(*v)]))
                        .collect(),
                ),
            ),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<ModelSource, String> {
        let states = v
            .get("states")
            .and_then(Json::as_arr)
            .ok_or("source missing states")?
            .iter()
            .map(|pair| {
                let p = pair.as_arr().filter(|p| p.len() == 2);
                match p {
                    Some([n, r]) => match (n.as_str(), r.as_str()) {
                        (Some(n), Some(r)) => Ok((n.to_string(), r.to_string())),
                        _ => Err("state entry must be [name, rhs]".to_string()),
                    },
                    _ => Err("state entry must be [name, rhs]".to_string()),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let consts = match v.get("consts") {
            None => Vec::new(),
            Some(arr) => arr
                .as_arr()
                .ok_or("consts must be an array")?
                .iter()
                .map(|pair| {
                    let p = pair.as_arr().filter(|p| p.len() == 2);
                    match p {
                        Some([n, val]) => match (n.as_str(), val.as_f64()) {
                            (Some(n), Some(val)) => Ok((n.to_string(), val)),
                            _ => Err("const entry must be [name, value]".to_string()),
                        },
                        _ => Err("const entry must be [name, value]".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(ModelSource { states, consts })
    }
}

/// A BLTL property in wire form: expressions are strings, structure is
/// explicit.
#[derive(Clone, Debug, PartialEq)]
pub enum PropSpec {
    /// The constant true formula.
    True,
    /// `expr ⋈ 0`.
    Prop {
        /// Left-hand term, compared against zero.
        expr: String,
        /// The relation.
        rel: RelOp,
    },
    /// Negation.
    Not(Box<PropSpec>),
    /// Conjunction.
    And(Vec<PropSpec>),
    /// Disjunction.
    Or(Vec<PropSpec>),
    /// `lhs U≤bound rhs`.
    Until {
        /// Left operand.
        lhs: Box<PropSpec>,
        /// Right operand.
        rhs: Box<PropSpec>,
        /// Time bound.
        bound: f64,
    },
    /// `F≤bound inner`.
    Eventually {
        /// Time bound.
        bound: f64,
        /// Operand.
        inner: Box<PropSpec>,
    },
    /// `G≤bound inner`.
    Globally {
        /// Time bound.
        bound: f64,
        /// Operand.
        inner: Box<PropSpec>,
    },
}

/// Lossless u64 encoding: JSON numbers are f64 in this protocol, so
/// seeds/ids above 2^53 would be silently rounded (breaking the
/// bit-determinism contract — the server would run a different seed
/// than the client constructed). Values strictly below 2^53 travel as
/// numbers; anything at or above travels as a decimal string, and the
/// decoder enforces the same rule: a *number* at or above 2^53 is
/// rejected rather than silently rounded — a non-Rust client sending
/// 2^53 + 1 as a plain number has already lost the true value to f64
/// rounding before the server ever sees it, so the only honest answer
/// is an error demanding the string form (every integer strictly below
/// 2^53 is exact in f64).
pub(crate) fn u64_to_json(v: u64) -> Json {
    if v < (1 << 53) {
        Json::num(v as f64)
    } else {
        Json::str(v.to_string())
    }
}

pub(crate) fn u64_from_json(v: &Json) -> Option<u64> {
    match v {
        Json::Num(_) => v.as_usize().map(|n| n as u64).filter(|&n| n < (1 << 53)),
        Json::Str(s) => s.parse().ok(),
        _ => None,
    }
}

/// Wire-boundary numeric validation: JSON happily parses `1e999` into
/// `f64::INFINITY`, and a non-finite horizon/bound/parameter must be a
/// clean protocol error, never a value handed to the solvers.
fn finite(v: f64, what: &str) -> Result<f64, String> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("{what} must be finite, got {v}"))
    }
}

fn rel_name(rel: RelOp) -> &'static str {
    match rel {
        RelOp::Gt => "gt",
        RelOp::Ge => "ge",
        RelOp::Eq => "eq",
        RelOp::Le => "le",
        RelOp::Lt => "lt",
    }
}

fn rel_from(name: &str) -> Result<RelOp, String> {
    Ok(match name {
        "gt" => RelOp::Gt,
        "ge" => RelOp::Ge,
        "eq" => RelOp::Eq,
        "le" => RelOp::Le,
        "lt" => RelOp::Lt,
        other => return Err(format!("unknown relation {other:?}")),
    })
}

impl PropSpec {
    /// Lowers the wire form into a [`Bltl`] over `cx`.
    pub fn build(&self, cx: &mut Context) -> Result<Bltl, String> {
        Ok(match self {
            PropSpec::True => Bltl::And(vec![]),
            PropSpec::Prop { expr, rel } => {
                // Strict parsing: every name must already exist in the
                // model (a state, a registered constant, or a free
                // parameter from the right-hand sides). Auto-interning
                // a typo'd name would make it silently evaluate as 0.
                let node = cx
                    .parse_strict(expr)
                    .map_err(|e| format!("{expr:?}: {e:?}"))?;
                Bltl::Prop(Atom::new(node, *rel))
            }
            PropSpec::Not(inner) => Bltl::Not(Box::new(inner.build(cx)?)),
            PropSpec::And(args) => Bltl::And(
                args.iter()
                    .map(|a| a.build(cx))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            PropSpec::Or(args) => Bltl::Or(
                args.iter()
                    .map(|a| a.build(cx))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            PropSpec::Until { lhs, rhs, bound } => Bltl::Until {
                lhs: Box::new(lhs.build(cx)?),
                rhs: Box::new(rhs.build(cx)?),
                bound: finite(*bound, "until bound")?,
            },
            PropSpec::Eventually { bound, inner } => {
                Bltl::eventually(finite(*bound, "eventually bound")?, inner.build(cx)?)
            }
            PropSpec::Globally { bound, inner } => {
                Bltl::globally(finite(*bound, "globally bound")?, inner.build(cx)?)
            }
        })
    }

    fn to_json(&self) -> Json {
        match self {
            PropSpec::True => Json::obj([("type", Json::str("true"))]),
            PropSpec::Prop { expr, rel } => Json::obj([
                ("type", Json::str("prop")),
                ("expr", Json::str(expr.clone())),
                ("rel", Json::str(rel_name(*rel))),
            ]),
            PropSpec::Not(inner) => {
                Json::obj([("type", Json::str("not")), ("inner", inner.to_json())])
            }
            PropSpec::And(args) => Json::obj([
                ("type", Json::str("and")),
                (
                    "args",
                    Json::Arr(args.iter().map(PropSpec::to_json).collect()),
                ),
            ]),
            PropSpec::Or(args) => Json::obj([
                ("type", Json::str("or")),
                (
                    "args",
                    Json::Arr(args.iter().map(PropSpec::to_json).collect()),
                ),
            ]),
            PropSpec::Until { lhs, rhs, bound } => Json::obj([
                ("type", Json::str("until")),
                ("lhs", lhs.to_json()),
                ("rhs", rhs.to_json()),
                ("bound", Json::num(*bound)),
            ]),
            PropSpec::Eventually { bound, inner } => Json::obj([
                ("type", Json::str("eventually")),
                ("bound", Json::num(*bound)),
                ("inner", inner.to_json()),
            ]),
            PropSpec::Globally { bound, inner } => Json::obj([
                ("type", Json::str("globally")),
                ("bound", Json::num(*bound)),
                ("inner", inner.to_json()),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<PropSpec, String> {
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("property missing type")?;
        let inner = |key: &str| -> Result<Box<PropSpec>, String> {
            Ok(Box::new(PropSpec::from_json(
                v.get(key).ok_or_else(|| format!("{ty} missing {key}"))?,
            )?))
        };
        let bound = || -> Result<f64, String> {
            v.get("bound")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{ty} missing bound"))
        };
        let args = || -> Result<Vec<PropSpec>, String> {
            v.get("args")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{ty} missing args"))?
                .iter()
                .map(PropSpec::from_json)
                .collect()
        };
        Ok(match ty {
            "true" => PropSpec::True,
            "prop" => PropSpec::Prop {
                expr: v
                    .get("expr")
                    .and_then(Json::as_str)
                    .ok_or("prop missing expr")?
                    .to_string(),
                rel: rel_from(
                    v.get("rel")
                        .and_then(Json::as_str)
                        .ok_or("prop missing rel")?,
                )?,
            },
            "not" => PropSpec::Not(inner("inner")?),
            "and" => PropSpec::And(args()?),
            "or" => PropSpec::Or(args()?),
            "until" => PropSpec::Until {
                lhs: inner("lhs")?,
                rhs: inner("rhs")?,
                bound: bound()?,
            },
            "eventually" => PropSpec::Eventually {
                bound: bound()?,
                inner: inner("inner")?,
            },
            "globally" => PropSpec::Globally {
                bound: bound()?,
                inner: inner("inner")?,
            },
            other => return Err(format!("unknown property type {other:?}")),
        })
    }
}

/// A sampling distribution in wire form.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DistSpec {
    /// Deterministic value.
    Point(f64),
    /// Uniform on `[lo, hi]`.
    Uniform(f64, f64),
    /// Normal.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        sd: f64,
    },
    /// Log-normal.
    LogNormal {
        /// Location.
        mu: f64,
        /// Scale.
        sigma: f64,
    },
}

impl DistSpec {
    fn build(&self) -> Result<Dist, String> {
        Ok(match *self {
            DistSpec::Point(v) => Dist::Point(finite(v, "point value")?),
            DistSpec::Uniform(lo, hi) => {
                Dist::Uniform(finite(lo, "uniform lo")?, finite(hi, "uniform hi")?)
            }
            DistSpec::Normal { mean, sd } => Dist::Normal {
                mean: finite(mean, "normal mean")?,
                sd: finite(sd, "normal sd")?,
            },
            DistSpec::LogNormal { mu, sigma } => Dist::LogNormal {
                mu: finite(mu, "lognormal mu")?,
                sigma: finite(sigma, "lognormal sigma")?,
            },
        })
    }

    fn to_json(self) -> Json {
        match self {
            DistSpec::Point(v) => Json::obj([("dist", Json::str("point")), ("v", Json::num(v))]),
            DistSpec::Uniform(lo, hi) => Json::obj([
                ("dist", Json::str("uniform")),
                ("lo", Json::num(lo)),
                ("hi", Json::num(hi)),
            ]),
            DistSpec::Normal { mean, sd } => Json::obj([
                ("dist", Json::str("normal")),
                ("mean", Json::num(mean)),
                ("sd", Json::num(sd)),
            ]),
            DistSpec::LogNormal { mu, sigma } => Json::obj([
                ("dist", Json::str("lognormal")),
                ("mu", Json::num(mu)),
                ("sigma", Json::num(sigma)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<DistSpec, String> {
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("dist missing {key}"))
        };
        match v.get("dist").and_then(Json::as_str) {
            Some("point") => Ok(DistSpec::Point(f("v")?)),
            Some("uniform") => Ok(DistSpec::Uniform(f("lo")?, f("hi")?)),
            Some("normal") => Ok(DistSpec::Normal {
                mean: f("mean")?,
                sd: f("sd")?,
            }),
            Some("lognormal") => Ok(DistSpec::LogNormal {
                mu: f("mu")?,
                sigma: f("sigma")?,
            }),
            other => Err(format!("unknown dist {other:?}")),
        }
    }
}

/// The SMC setup in wire form (see [`SmcSpec`]).
#[derive(Clone, Debug, PartialEq)]
pub struct SmcSpecWire {
    /// One initial-state distribution per state component.
    pub init: Vec<DistSpec>,
    /// Randomized parameters by name.
    pub params: Vec<(String, DistSpec)>,
    /// The monitored property.
    pub property: PropSpec,
    /// Simulation horizon.
    pub t_end: f64,
}

impl SmcSpecWire {
    fn build(&self, cx: &mut Context) -> Result<SmcSpec, String> {
        let params = self
            .params
            .iter()
            .map(|(name, d)| {
                let vid = cx
                    .var_id(name)
                    .ok_or_else(|| format!("unknown parameter {name:?}"))?;
                Ok((vid, d.build()?))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SmcSpec {
            init: self
                .init
                .iter()
                .map(DistSpec::build)
                .collect::<Result<Vec<_>, _>>()?,
            params,
            property: self.property.build(cx)?,
            t_end: finite(self.t_end, "t_end")?,
        })
    }

    fn to_json(&self) -> Json {
        Json::obj([
            (
                "init",
                Json::Arr(self.init.iter().map(|d| d.to_json()).collect()),
            ),
            (
                "params",
                Json::Arr(
                    self.params
                        .iter()
                        .map(|(n, d)| Json::Arr(vec![Json::str(n.clone()), d.to_json()]))
                        .collect(),
                ),
            ),
            ("property", self.property.to_json()),
            ("t_end", Json::num(self.t_end)),
        ])
    }

    fn from_json(v: &Json) -> Result<SmcSpecWire, String> {
        let init = v
            .get("init")
            .and_then(Json::as_arr)
            .ok_or("smc missing init")?
            .iter()
            .map(DistSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let params = match v.get("params") {
            None => Vec::new(),
            Some(arr) => arr
                .as_arr()
                .ok_or("params must be an array")?
                .iter()
                .map(|pair| {
                    let p = pair.as_arr().filter(|p| p.len() == 2);
                    match p {
                        Some([n, d]) => match n.as_str() {
                            Some(n) => Ok((n.to_string(), DistSpec::from_json(d)?)),
                            None => Err("param entry must be [name, dist]".to_string()),
                        },
                        _ => Err("param entry must be [name, dist]".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(SmcSpecWire {
            init,
            params,
            property: PropSpec::from_json(v.get("property").ok_or("smc missing property")?)?,
            t_end: v
                .get("t_end")
                .and_then(Json::as_f64)
                .ok_or("smc missing t_end")?,
        })
    }
}

/// Sample-count policy in wire form (see [`EstimateMethod`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MethodSpec {
    /// Exactly `n` samples.
    Fixed {
        /// Sample count.
        n: usize,
    },
    /// Chernoff–Hoeffding bound.
    Chernoff {
        /// Absolute error bound.
        eps: f64,
        /// Failure probability.
        delta: f64,
    },
    /// Bayesian adaptive stopping.
    Bayes {
        /// Target half-width.
        half_width: f64,
        /// Coverage.
        confidence: f64,
        /// Sample cap.
        max_samples: usize,
    },
}

impl MethodSpec {
    fn build(&self) -> EstimateMethod {
        match *self {
            MethodSpec::Fixed { n } => EstimateMethod::Fixed { n },
            MethodSpec::Chernoff { eps, delta } => EstimateMethod::Chernoff { eps, delta },
            MethodSpec::Bayes {
                half_width,
                confidence,
                max_samples,
            } => EstimateMethod::Bayes {
                half_width,
                confidence,
                max_samples,
            },
        }
    }

    fn to_json(self) -> Json {
        match self {
            MethodSpec::Fixed { n } => {
                Json::obj([("type", Json::str("fixed")), ("n", Json::num(n as f64))])
            }
            MethodSpec::Chernoff { eps, delta } => Json::obj([
                ("type", Json::str("chernoff")),
                ("eps", Json::num(eps)),
                ("delta", Json::num(delta)),
            ]),
            MethodSpec::Bayes {
                half_width,
                confidence,
                max_samples,
            } => Json::obj([
                ("type", Json::str("bayes")),
                ("half_width", Json::num(half_width)),
                ("confidence", Json::num(confidence)),
                ("max_samples", Json::num(max_samples as f64)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<MethodSpec, String> {
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("method missing {key}"))
        };
        let n = |key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("method missing {key}"))
        };
        match v.get("type").and_then(Json::as_str) {
            Some("fixed") => Ok(MethodSpec::Fixed { n: n("n")? }),
            Some("chernoff") => Ok(MethodSpec::Chernoff {
                eps: f("eps")?,
                delta: f("delta")?,
            }),
            Some("bayes") => Ok(MethodSpec::Bayes {
                half_width: f("half_width")?,
                confidence: f("confidence")?,
                max_samples: n("max_samples")?,
            }),
            other => Err(format!("unknown estimate method {other:?}")),
        }
    }
}

/// A typed analysis request in wire form. The δ-decision queries over
/// hybrid automata (`Falsify`/`Therapy`/`Calibrate`) stay in-process
/// for now — automata have no textual wire form yet.
#[derive(Clone, Debug, PartialEq)]
pub enum QuerySpec {
    /// Probability estimation.
    Estimate {
        /// Random instantiation + property.
        smc: SmcSpecWire,
        /// Sample-count policy.
        method: MethodSpec,
    },
    /// Wald's sequential probability ratio test.
    Sprt {
        /// Random instantiation + property.
        smc: SmcSpecWire,
        /// Threshold θ.
        theta: f64,
        /// Indifference half-width.
        indiff: f64,
        /// Type-I error bound.
        alpha: f64,
        /// Type-II error bound.
        beta: f64,
        /// Sample cap.
        max_samples: usize,
    },
    /// Quantitative robustness summary.
    Robustness {
        /// Random instantiation + property.
        smc: SmcSpecWire,
        /// Sample count.
        samples: usize,
    },
    /// Equilibrium localization + Lyapunov certification.
    Stability {
        /// Search region, one `[lo, hi]` per state component.
        region: Vec<(f64, f64)>,
        /// Inner annulus radius.
        r_min: f64,
        /// Outer annulus radius.
        r_max: f64,
    },
    /// Static pre-flight analysis (the `{"op":"lint"}` wire op): no
    /// solving, no sampling, read-only against the session. Every
    /// variable the model knows is in scope for the unused-entity
    /// checks; `ranges` optionally tightens the default `[0, ∞)` box
    /// per variable.
    Lint {
        /// Assumed `(variable, lo, hi)` boxes; unlisted variables keep
        /// the nonnegative default.
        ranges: Vec<(String, f64, f64)>,
    },
}

impl QuerySpec {
    /// Names of the parameters this query randomizes (empty for
    /// non-SMC queries). The server cross-checks them against the
    /// model's registration-time constants.
    pub fn param_names(&self) -> Vec<&str> {
        match self {
            QuerySpec::Estimate { smc, .. }
            | QuerySpec::Sprt { smc, .. }
            | QuerySpec::Robustness { smc, .. } => {
                smc.params.iter().map(|(n, _)| n.as_str()).collect()
            }
            QuerySpec::Stability { .. } | QuerySpec::Lint { .. } => Vec::new(),
        }
    }

    /// Short kind label for observability surfaces (the `inflight`
    /// stats block and trace exports).
    pub fn kind(&self) -> &'static str {
        match self {
            QuerySpec::Estimate { .. } => "estimate",
            QuerySpec::Sprt { .. } => "sprt",
            QuerySpec::Robustness { .. } => "robustness",
            QuerySpec::Stability { .. } => "stability",
            QuerySpec::Lint { .. } => "lint",
        }
    }

    /// Lowers the wire form into an engine [`Query`], parsing every
    /// expression into `cx` (the target model's context).
    pub fn build(&self, cx: &mut Context) -> Result<Query, String> {
        Ok(match self {
            QuerySpec::Estimate { smc, method } => Query::Estimate {
                smc: smc.build(cx)?,
                method: method.build(),
            },
            QuerySpec::Sprt {
                smc,
                theta,
                indiff,
                alpha,
                beta,
                max_samples,
            } => Query::Sprt {
                smc: smc.build(cx)?,
                theta: finite(*theta, "theta")?,
                indiff: finite(*indiff, "indiff")?,
                alpha: finite(*alpha, "alpha")?,
                beta: finite(*beta, "beta")?,
                max_samples: *max_samples,
            },
            QuerySpec::Robustness { smc, samples } => Query::Robustness {
                smc: smc.build(cx)?,
                samples: *samples,
            },
            QuerySpec::Stability {
                region,
                r_min,
                r_max,
            } => Query::Stability {
                region: region
                    .iter()
                    .map(|&(lo, hi)| {
                        if finite(lo, "region lo")? <= finite(hi, "region hi")? {
                            Ok(Interval::new(lo, hi))
                        } else {
                            Err(format!("region entry [{lo}, {hi}] is empty"))
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                r_min: finite(*r_min, "r_min")?,
                r_max: finite(*r_max, "r_max")?,
            },
            QuerySpec::Lint { ranges } => {
                let ranges = ranges
                    .iter()
                    .map(|(name, lo, hi)| {
                        let vid = cx
                            .var_id(name)
                            .ok_or_else(|| format!("unknown variable {name:?}"))?;
                        let lo = finite(*lo, "range lo")?;
                        let hi = finite(*hi, "range hi")?;
                        if lo > hi {
                            return Err(format!("range [{lo}, {hi}] for {name:?} is empty"));
                        }
                        Ok((vid, Interval::new(lo, hi)))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                // Every variable the model interned is "declared" from
                // the wire's perspective: registration interns states
                // and constants, and strict parsing means queries never
                // grow the set — so this list is deterministic per
                // model and the canonical memoization key is stable.
                let declared = (0..cx.num_vars()).map(VarId::from_index).collect();
                Query::Lint {
                    ranges,
                    declared,
                    property: None,
                }
            }
        })
    }

    fn to_json(&self) -> Json {
        match self {
            QuerySpec::Estimate { smc, method } => Json::obj([
                ("type", Json::str("estimate")),
                ("smc", smc.to_json()),
                ("method", method.to_json()),
            ]),
            QuerySpec::Sprt {
                smc,
                theta,
                indiff,
                alpha,
                beta,
                max_samples,
            } => Json::obj([
                ("type", Json::str("sprt")),
                ("smc", smc.to_json()),
                ("theta", Json::num(*theta)),
                ("indiff", Json::num(*indiff)),
                ("alpha", Json::num(*alpha)),
                ("beta", Json::num(*beta)),
                ("max_samples", Json::num(*max_samples as f64)),
            ]),
            QuerySpec::Robustness { smc, samples } => Json::obj([
                ("type", Json::str("robustness")),
                ("smc", smc.to_json()),
                ("samples", Json::num(*samples as f64)),
            ]),
            QuerySpec::Stability {
                region,
                r_min,
                r_max,
            } => Json::obj([
                ("type", Json::str("stability")),
                (
                    "region",
                    Json::Arr(
                        region
                            .iter()
                            .map(|&(lo, hi)| Json::Arr(vec![Json::num(lo), Json::num(hi)]))
                            .collect(),
                    ),
                ),
                ("r_min", Json::num(*r_min)),
                ("r_max", Json::num(*r_max)),
            ]),
            QuerySpec::Lint { ranges } => Json::obj([
                ("type", Json::str("lint")),
                ("ranges", ranges_to_json(ranges)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<QuerySpec, String> {
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("query missing {key}"))
        };
        let n = |key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("query missing {key}"))
        };
        let smc = || -> Result<SmcSpecWire, String> {
            SmcSpecWire::from_json(v.get("smc").ok_or("query missing smc")?)
        };
        match v.get("type").and_then(Json::as_str) {
            Some("estimate") => Ok(QuerySpec::Estimate {
                smc: smc()?,
                method: MethodSpec::from_json(v.get("method").ok_or("estimate missing method")?)?,
            }),
            Some("sprt") => Ok(QuerySpec::Sprt {
                smc: smc()?,
                theta: f("theta")?,
                indiff: f("indiff")?,
                alpha: f("alpha")?,
                beta: f("beta")?,
                max_samples: n("max_samples")?,
            }),
            Some("robustness") => Ok(QuerySpec::Robustness {
                smc: smc()?,
                samples: n("samples")?,
            }),
            Some("stability") => Ok(QuerySpec::Stability {
                region: v
                    .get("region")
                    .and_then(Json::as_arr)
                    .ok_or("stability missing region")?
                    .iter()
                    .map(|pair| {
                        let p = pair.as_arr().filter(|p| p.len() == 2);
                        match p {
                            Some([lo, hi]) => match (lo.as_f64(), hi.as_f64()) {
                                (Some(lo), Some(hi)) => Ok((lo, hi)),
                                _ => Err("region entry must be [lo, hi]".to_string()),
                            },
                            _ => Err("region entry must be [lo, hi]".to_string()),
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                r_min: f("r_min")?,
                r_max: f("r_max")?,
            }),
            Some("lint") => Ok(QuerySpec::Lint {
                ranges: ranges_from_json(v)?,
            }),
            other => Err(format!("unknown query type {other:?}")),
        }
    }
}

fn ranges_to_json(ranges: &[(String, f64, f64)]) -> Json {
    Json::Arr(
        ranges
            .iter()
            .map(|(n, lo, hi)| {
                Json::Arr(vec![Json::str(n.clone()), Json::num(*lo), Json::num(*hi)])
            })
            .collect(),
    )
}

/// Parses the optional `"ranges"` array of `[name, lo, hi]` triples
/// shared by the `lint` op and the `lint` query type.
fn ranges_from_json(v: &Json) -> Result<Vec<(String, f64, f64)>, String> {
    match v.get("ranges") {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(arr) => arr
            .as_arr()
            .ok_or("ranges must be an array")?
            .iter()
            .map(|triple| {
                let t = triple.as_arr().filter(|t| t.len() == 3);
                match t {
                    Some([n, lo, hi]) => match (n.as_str(), lo.as_f64(), hi.as_f64()) {
                        (Some(n), Some(lo), Some(hi)) => Ok((n.to_string(), lo, hi)),
                        _ => Err("range entry must be [name, lo, hi]".to_string()),
                    },
                    _ => Err("range entry must be [name, lo, hi]".to_string()),
                }
            })
            .collect(),
    }
}

/// A per-request resource budget in wire form. Count caps are
/// deterministic (and memoizable); `deadline_ms` is wall-clock and
/// makes the request uncacheable.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BudgetSpec {
    /// Cap on Bernoulli samples.
    pub max_samples: Option<usize>,
    /// Cap on δ-decision box splits.
    pub max_paver_boxes: Option<usize>,
    /// Wall-clock allowance in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Maximum milliseconds the request may wait in the admission
    /// queue before the server sheds it with an `expired` reply.
    /// Excluded from memoization keys: shedding happens before any
    /// computation, so it can never change a computed result.
    pub queue_ms: Option<u64>,
}

impl BudgetSpec {
    /// Lowers into an engine [`Budget`] (no cancellation token — the
    /// server attaches its own per-request token).
    pub fn build(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(n) = self.max_samples {
            b = b.with_max_samples(n);
        }
        if let Some(n) = self.max_paver_boxes {
            b = b.with_max_paver_boxes(n);
        }
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(ms) = self.queue_ms {
            b = b.with_queue_deadline(Duration::from_millis(ms));
        }
        b
    }

    fn to_json(self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = Vec::new();
        if let Some(n) = self.max_samples {
            pairs.push(("max_samples", Json::num(n as f64)));
        }
        if let Some(n) = self.max_paver_boxes {
            pairs.push(("max_paver_boxes", Json::num(n as f64)));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms", Json::num(ms as f64)));
        }
        if let Some(ms) = self.queue_ms {
            pairs.push(("queue_ms", Json::num(ms as f64)));
        }
        Json::obj(pairs)
    }

    fn from_json(v: &Json) -> Result<BudgetSpec, String> {
        let n = |key: &str| -> Result<Option<usize>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(x) => x
                    .as_usize()
                    .map(Some)
                    .ok_or_else(|| format!("budget.{key} must be a non-negative integer")),
            }
        };
        Ok(BudgetSpec {
            max_samples: n("max_samples")?,
            max_paver_boxes: n("max_paver_boxes")?,
            deadline_ms: n("deadline_ms")?.map(|v| v as u64),
            queue_ms: n("queue_ms")?.map(|v| v as u64),
        })
    }
}

/// One query request: which model, which analysis, which seed, under
/// which budget. `id` is optional and enables remote cancellation
/// ([`Request::Cancel`]).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// Registered model name.
    pub model: String,
    /// Optional request id (echoed in the response, target of `cancel`).
    pub id: Option<u64>,
    /// Master seed.
    pub seed: u64,
    /// Resource budget.
    pub budget: BudgetSpec,
    /// The analysis.
    pub query: QuerySpec,
    /// Opt-in request-scoped tracing: when `true`, the reply carries a
    /// `"trace"` object with the span tree and final progress counters.
    /// Strictly observational — excluded from memoization keys (a
    /// traced query and its untraced twin share one cache entry and
    /// one fingerprint).
    pub trace: bool,
}

/// A wire request: one JSON object per line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Registers (or replaces) a model under a name.
    Register {
        /// Model name.
        model: String,
        /// Model definition.
        source: ModelSource,
    },
    /// Runs a query.
    Query(QueryRequest),
    /// Cancels the in-flight query with the given id.
    Cancel {
        /// The target request id.
        id: u64,
    },
    /// Cache/registry/scheduler statistics.
    Stats,
    /// Chrome-trace JSON for recently completed traced requests.
    TraceExport,
    /// Prometheus-style text metrics exposition.
    Metrics,
    /// Liveness check.
    Ping,
    /// Stops the daemon.
    Shutdown,
}

/// Every `"op"` discriminant the protocol accepts, in match order.
/// This is the source of truth the docs-drift check (CI and
/// `tests/docs_drift.rs`) extracts quoted
/// names from (matched up to the closing `];`) and greps against
/// `docs/OPERATIONS.md`.
pub const OP_NAMES: &[&str] = &[
    "register",
    "query",
    "lint",
    "cancel",
    "stats",
    "trace_export",
    "metrics",
    "ping",
    "shutdown",
];

impl Request {
    /// Renders the request as one JSON line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Register { model, source } => Json::obj([
                ("op", Json::str("register")),
                ("model", Json::str(model.clone())),
                ("source", source.to_json()),
            ]),
            // The lint op has a dedicated flat form: no smc setup, no
            // method, usually no seed or budget worth spelling out.
            Request::Query(q) => {
                if let QuerySpec::Lint { ranges } = &q.query {
                    let mut pairs = vec![
                        ("op", Json::str("lint")),
                        ("model", Json::str(q.model.clone())),
                    ];
                    if !ranges.is_empty() {
                        pairs.push(("ranges", ranges_to_json(ranges)));
                    }
                    if q.seed != 0 {
                        pairs.push(("seed", u64_to_json(q.seed)));
                    }
                    if q.budget != BudgetSpec::default() {
                        pairs.push(("budget", q.budget.to_json()));
                    }
                    if let Some(id) = q.id {
                        pairs.push(("id", u64_to_json(id)));
                    }
                    if q.trace {
                        pairs.push(("trace", Json::Bool(true)));
                    }
                    return Json::obj(pairs);
                }
                let mut pairs = vec![
                    ("op", Json::str("query")),
                    ("model", Json::str(q.model.clone())),
                    ("seed", u64_to_json(q.seed)),
                    ("budget", q.budget.to_json()),
                    ("query", q.query.to_json()),
                ];
                if let Some(id) = q.id {
                    pairs.push(("id", u64_to_json(id)));
                }
                if q.trace {
                    pairs.push(("trace", Json::Bool(true)));
                }
                Json::obj(pairs)
            }
            Request::Cancel { id } => {
                Json::obj([("op", Json::str("cancel")), ("id", u64_to_json(*id))])
            }
            Request::Stats => Json::obj([("op", Json::str("stats"))]),
            Request::TraceExport => Json::obj([("op", Json::str("trace_export"))]),
            Request::Metrics => Json::obj([("op", Json::str("metrics"))]),
            Request::Ping => Json::obj([("op", Json::str("ping"))]),
            Request::Shutdown => Json::obj([("op", Json::str("shutdown"))]),
        }
    }

    /// Parses a request object.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        match v.get("op").and_then(Json::as_str) {
            Some("register") => Ok(Request::Register {
                model: v
                    .get("model")
                    .and_then(Json::as_str)
                    .ok_or("register missing model")?
                    .to_string(),
                source: ModelSource::from_json(v.get("source").ok_or("register missing source")?)?,
            }),
            Some("query") => {
                Ok(Request::Query(QueryRequest {
                    model: v
                        .get("model")
                        .and_then(Json::as_str)
                        .ok_or("query missing model")?
                        .to_string(),
                    id: match v.get("id") {
                        None | Some(Json::Null) => None,
                        Some(j) => Some(u64_from_json(j).ok_or(
                            "query id must be a u64 (numbers below 2^53, string form above)",
                        )?),
                    },
                    seed: v
                        .get("seed")
                        .and_then(u64_from_json)
                        .ok_or("query missing seed")?,
                    budget: match v.get("budget") {
                        None => BudgetSpec::default(),
                        Some(b) => BudgetSpec::from_json(b)?,
                    },
                    query: QuerySpec::from_json(v.get("query").ok_or("query missing query")?)?,
                    trace: v.get("trace").and_then(Json::as_bool).unwrap_or(false),
                }))
            }
            // Lint in flat form; seed and budget are optional because a
            // static pass neither samples nor usually needs a budget,
            // but both are honored when supplied (the query still runs
            // through the ordinary scheduler and cache).
            Some("lint") => Ok(Request::Query(QueryRequest {
                model: v
                    .get("model")
                    .and_then(Json::as_str)
                    .ok_or("lint missing model")?
                    .to_string(),
                id: match v.get("id") {
                    None | Some(Json::Null) => None,
                    Some(j) => {
                        Some(u64_from_json(j).ok_or(
                            "lint id must be a u64 (numbers below 2^53, string form above)",
                        )?)
                    }
                },
                seed: match v.get("seed") {
                    None | Some(Json::Null) => 0,
                    Some(j) => u64_from_json(j)
                        .ok_or("lint seed must be a u64 (numbers below 2^53, string form above)")?,
                },
                budget: match v.get("budget") {
                    None => BudgetSpec::default(),
                    Some(b) => BudgetSpec::from_json(b)?,
                },
                query: QuerySpec::Lint {
                    ranges: ranges_from_json(v)?,
                },
                trace: v.get("trace").and_then(Json::as_bool).unwrap_or(false),
            })),
            Some("cancel") => Ok(Request::Cancel {
                id: v
                    .get("id")
                    .and_then(u64_from_json)
                    .ok_or("cancel missing id")?,
            }),
            Some("stats") => Ok(Request::Stats),
            Some("trace_export") => Ok(Request::TraceExport),
            Some("metrics") => Ok(Request::Metrics),
            Some("ping") => Ok(Request::Ping),
            Some("shutdown") => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Parses a request line.
    pub fn from_line(line: &str) -> Result<Request, String> {
        Request::from_json(&crate::json::parse_json(line.trim())?)
    }
}

fn num_or_null(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

/// Serializes a [`Report`] into the response `"report"` payload:
/// discriminant, outcome, the typed value, provenance, and the
/// server-computed [`Report::fingerprint`] (so clients can check
/// bit-level agreement without reconstructing the struct).
pub fn report_to_json(report: &Report) -> Json {
    let value = match &report.value {
        Value::Estimate(e) => Json::obj([
            ("type", Json::str("estimate")),
            ("p_hat", num_or_null(e.p_hat)),
            ("samples", Json::num(e.samples as f64)),
            ("half_width", num_or_null(e.half_width)),
            ("confidence", num_or_null(e.confidence)),
        ]),
        Value::Sprt(r) => Json::obj([
            ("type", Json::str("sprt")),
            ("outcome", Json::str(format!("{:?}", r.outcome))),
            ("samples", Json::num(r.samples as f64)),
            ("p_hat", num_or_null(r.p_hat)),
        ]),
        Value::Robustness(r) => Json::obj([
            ("type", Json::str("robustness")),
            ("p_hat", num_or_null(r.p_hat)),
            ("mean", num_or_null(r.mean)),
            ("min", num_or_null(r.min)),
        ]),
        Value::Stability(r) => match r {
            None => Json::obj([("type", Json::str("stability")), ("report", Json::Null)]),
            Some(rep) => Json::obj([
                ("type", Json::str("stability")),
                (
                    "report",
                    Json::obj([
                        (
                            "equilibrium",
                            Json::Arr(rep.equilibrium.iter().map(|&v| num_or_null(v)).collect()),
                        ),
                        ("lyapunov", Json::str(rep.lyapunov.clone())),
                        ("iterations", Json::num(rep.iterations as f64)),
                        ("certified", Json::Bool(rep.certified)),
                    ]),
                ),
            ]),
        },
        Value::Lint(diags) => Json::obj([
            ("type", Json::str("lint")),
            (
                "diagnostics",
                Json::Arr(
                    diags
                        .iter()
                        .map(|d| {
                            Json::obj([
                                ("code", Json::str(d.code.clone())),
                                ("severity", Json::str(d.severity.name())),
                                ("site", Json::str(d.site.clone())),
                                ("message", Json::str(d.message.clone())),
                                (
                                    "expr",
                                    match &d.expr {
                                        Some(e) => Json::str(e.clone()),
                                        None => Json::Null,
                                    },
                                ),
                                (
                                    "witness",
                                    Json::Arr(
                                        d.witness
                                            .iter()
                                            .map(|(name, iv)| {
                                                Json::Arr(vec![
                                                    Json::str(name.clone()),
                                                    num_or_null(iv.lo()),
                                                    num_or_null(iv.hi()),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        // Not producible over the wire today; serialized as a debug
        // rendering so the payload is still total.
        other => Json::obj([
            ("type", Json::str("opaque")),
            ("debug", Json::str(format!("{other:?}"))),
        ]),
    };
    Json::obj([
        ("kind", Json::str(format!("{:?}", report.kind))),
        (
            "outcome",
            Json::str(match report.outcome {
                biocheck_engine::Outcome::Complete => "complete",
                biocheck_engine::Outcome::Exhausted => "exhausted",
            }),
        ),
        ("value", value),
        (
            "provenance",
            Json::obj([
                ("seed", u64_to_json(report.provenance.seed)),
                ("samples", Json::num(report.provenance.samples as f64)),
                (
                    "early_stop_rate",
                    num_or_null(report.provenance.early_stop_rate),
                ),
                ("avg_steps", num_or_null(report.provenance.avg_steps)),
                // Phase timings are observability-only (excluded from
                // the fingerprint); null when unmeasured, e.g. a report
                // reloaded from a persistence log.
                (
                    "compile_ms",
                    opt_duration_ms(report.provenance.compile_time),
                ),
                ("run_ms", opt_duration_ms(report.provenance.run_time)),
            ]),
        ),
        ("fingerprint", Json::str(report.fingerprint())),
    ])
}

fn opt_duration_ms(d: Option<std::time::Duration>) -> Json {
    match d {
        Some(d) => Json::Num(d.as_secs_f64() * 1e3),
        None => Json::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn sample_request() -> Request {
        Request::Query(QueryRequest {
            model: "decay".into(),
            id: Some(7),
            seed: 42,
            trace: false,
            budget: BudgetSpec {
                max_samples: Some(500),
                max_paver_boxes: None,
                deadline_ms: Some(250),
                queue_ms: Some(1_000),
            },
            query: QuerySpec::Estimate {
                smc: SmcSpecWire {
                    init: vec![DistSpec::Uniform(0.5, 1.5)],
                    params: vec![("k".into(), DistSpec::Point(1.0))],
                    property: PropSpec::Eventually {
                        bound: 0.01,
                        inner: Box::new(PropSpec::Prop {
                            expr: "x - 1".into(),
                            rel: RelOp::Ge,
                        }),
                    },
                    t_end: 0.01,
                },
                method: MethodSpec::Fixed { n: 200 },
            },
        })
    }

    #[test]
    fn requests_roundtrip_through_json() {
        let requests = vec![
            sample_request(),
            Request::Register {
                model: "decay".into(),
                source: ModelSource {
                    states: vec![("x".into(), "-k*x".into())],
                    consts: vec![("k".into(), 1.0)],
                },
            },
            Request::Cancel { id: 3 },
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
            Request::Query(QueryRequest {
                model: "m".into(),
                id: None,
                seed: 0,
                trace: false,
                budget: BudgetSpec::default(),
                query: QuerySpec::Stability {
                    region: vec![(-0.5, 0.5), (-1.0, 1.0)],
                    r_min: 0.1,
                    r_max: 0.4,
                },
            }),
            Request::Query(QueryRequest {
                model: "m".into(),
                id: None,
                seed: 9,
                trace: false,
                budget: BudgetSpec::default(),
                query: QuerySpec::Sprt {
                    smc: SmcSpecWire {
                        init: vec![DistSpec::Normal { mean: 0.0, sd: 1.0 }],
                        params: vec![],
                        property: PropSpec::And(vec![
                            PropSpec::True,
                            PropSpec::Not(Box::new(PropSpec::Prop {
                                expr: "x".into(),
                                rel: RelOp::Lt,
                            })),
                        ]),
                        t_end: 1.0,
                    },
                    theta: 0.8,
                    indiff: 0.05,
                    alpha: 0.01,
                    beta: 0.01,
                    max_samples: 1000,
                },
            }),
        ];
        for req in requests {
            let line = req.to_json().render();
            let back = Request::from_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, req, "{line}");
        }
    }

    #[test]
    fn lint_requests_roundtrip_through_json() {
        // Flat form with every optional field absent, with ranges, and
        // with a non-default seed/budget/id.
        let bare = Request::Query(QueryRequest {
            model: "m".into(),
            id: None,
            seed: 0,
            trace: false,
            budget: BudgetSpec::default(),
            query: QuerySpec::Lint { ranges: vec![] },
        });
        let full = Request::Query(QueryRequest {
            model: "m".into(),
            id: Some(12),
            seed: 3,
            trace: false,
            budget: BudgetSpec {
                max_samples: Some(10),
                ..BudgetSpec::default()
            },
            query: QuerySpec::Lint {
                ranges: vec![("x".into(), 0.0, 5.0), ("k".into(), 0.1, 0.4)],
            },
        });
        for req in [bare, full] {
            let line = req.to_json().render();
            assert!(line.contains("\"op\":\"lint\""), "{line}");
            let back = Request::from_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, req, "{line}");
        }
        // Hand-written client form parses too.
        let req =
            Request::from_line(r#"{"op":"lint","model":"decay","ranges":[["x",0,2]]}"#).unwrap();
        let Request::Query(qr) = req else {
            unreachable!()
        };
        assert_eq!(qr.seed, 0);
        assert_eq!(
            qr.query,
            QuerySpec::Lint {
                ranges: vec![("x".into(), 0.0, 2.0)],
            }
        );
    }

    #[test]
    fn lint_spec_builds_and_reports_serialize() {
        let source = ModelSource {
            states: vec![("x".into(), "-k*x".into())],
            consts: vec![("k".into(), 1.0)],
        };
        let (mut cx, sys) = source.build().unwrap();
        let spec = QuerySpec::Lint {
            ranges: vec![("x".into(), 0.0, 2.0)],
        };
        let query = spec.build(&mut cx).unwrap();
        let Query::Lint {
            ranges, declared, ..
        } = &query
        else {
            panic!("expected lint query")
        };
        assert_eq!(ranges.len(), 1);
        assert_eq!(declared.len(), cx.num_vars());
        // Unknown variables are a parse-time error, not a silent skip.
        let bad = QuerySpec::Lint {
            ranges: vec![("nope".into(), 0.0, 1.0)],
        };
        assert!(bad.build(&mut cx).unwrap_err().contains("unknown"));
        // Run it for real and check the typed serialization.
        let session = biocheck_engine::Session::from_parts(cx, sys);
        let report = session.query(query).run().unwrap();
        let json = report_to_json(&report);
        let value = json.get("value").unwrap();
        assert_eq!(value.get("type").and_then(Json::as_str), Some("lint"));
        assert!(value.get("diagnostics").and_then(Json::as_arr).is_some());
        assert_eq!(
            json.get("fingerprint").and_then(Json::as_str),
            Some(report.fingerprint().as_str())
        );
    }

    /// `OP_NAMES` is the docs-drift source of truth: it must cover
    /// exactly the ops the parser accepts and the renderer emits.
    #[test]
    fn op_names_match_protocol() {
        let argless = [
            ("stats", Request::Stats),
            ("trace_export", Request::TraceExport),
            ("metrics", Request::Metrics),
            ("ping", Request::Ping),
            ("shutdown", Request::Shutdown),
        ];
        for (name, want) in argless {
            assert!(OP_NAMES.contains(&name));
            let parsed = Request::from_line(&format!("{{\"op\":\"{name}\"}}")).unwrap();
            assert_eq!(parsed, want);
        }
        // Ops with payloads: the rendered discriminant is listed.
        for req in [
            sample_request(),
            Request::Register {
                model: "m".into(),
                source: ModelSource {
                    states: vec![("x".into(), "-x".into())],
                    consts: vec![],
                },
            },
            Request::Cancel { id: 1 },
            Request::Query(QueryRequest {
                model: "m".into(),
                id: None,
                seed: 0,
                trace: false,
                budget: BudgetSpec::default(),
                query: QuerySpec::Lint { ranges: vec![] },
            }),
        ] {
            let op = req
                .to_json()
                .get("op")
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            assert!(OP_NAMES.contains(&op.as_str()), "unlisted op {op}");
        }
        assert_eq!(OP_NAMES.len(), 9);
    }

    /// The `trace` flag rides along on query and lint requests, is
    /// omitted from the wire form when false, and round-trips when set.
    #[test]
    fn trace_flag_roundtrips_and_defaults_off() {
        let Request::Query(mut qr) = sample_request() else {
            unreachable!()
        };
        let plain = Request::Query(qr.clone()).to_json().render();
        assert!(!plain.contains("\"trace\""), "{plain}");
        qr.trace = true;
        let traced = Request::Query(qr.clone());
        let line = traced.to_json().render();
        assert!(line.contains("\"trace\":true"), "{line}");
        assert_eq!(Request::from_line(&line).unwrap(), traced);
        // Flat lint form carries it too.
        let lint = Request::Query(QueryRequest {
            model: "m".into(),
            id: None,
            seed: 0,
            trace: true,
            budget: BudgetSpec::default(),
            query: QuerySpec::Lint { ranges: vec![] },
        });
        let line = lint.to_json().render();
        assert!(line.contains("\"op\":\"lint\"") && line.contains("\"trace\":true"));
        assert_eq!(Request::from_line(&line).unwrap(), lint);
    }

    #[test]
    fn query_spec_builds_against_model_context() {
        let source = ModelSource {
            states: vec![("x".into(), "-k*x".into())],
            consts: vec![("k".into(), 1.0)],
        };
        let (mut cx, sys) = source.build().unwrap();
        assert_eq!(sys.dim(), 1);
        let Request::Query(qr) = sample_request() else {
            unreachable!()
        };
        let query = qr.query.build(&mut cx).unwrap();
        assert!(matches!(query, Query::Estimate { .. }));
        // Unknown parameter names are an error, not a silent intern.
        let bad = QuerySpec::Estimate {
            smc: SmcSpecWire {
                init: vec![DistSpec::Point(1.0)],
                params: vec![("nope".into(), DistSpec::Point(0.0))],
                property: PropSpec::True,
                t_end: 1.0,
            },
            method: MethodSpec::Fixed { n: 1 },
        };
        assert!(bad.build(&mut cx).is_err());
    }

    #[test]
    fn large_seeds_roundtrip_losslessly() {
        let req = Request::Query(QueryRequest {
            model: "m".into(),
            id: Some(u64::MAX - 7),
            seed: u64::MAX,
            trace: false,
            budget: BudgetSpec::default(),
            query: QuerySpec::Stability {
                region: vec![(-1.0, 1.0)],
                r_min: 0.1,
                r_max: 0.5,
            },
        });
        let line = req.to_json().render();
        let back = Request::from_line(&line).unwrap();
        assert_eq!(back, req, "{line}");
        let cancel = Request::Cancel { id: u64::MAX - 7 };
        let back = Request::from_line(&cancel.to_json().render()).unwrap();
        assert_eq!(back, cancel);
    }

    #[test]
    fn model_name_collisions_are_rejected() {
        // A const shadowing a state would substitute the state out of
        // its own dynamics.
        let bad = ModelSource {
            states: vec![("x".into(), "-k*x".into())],
            consts: vec![("x".into(), 2.0), ("k".into(), 1.0)],
        };
        assert!(bad.build().unwrap_err().contains("collides"));
        let dup_state = ModelSource {
            states: vec![("x".into(), "-x".into()), ("x".into(), "x".into())],
            consts: vec![],
        };
        assert!(dup_state.build().unwrap_err().contains("duplicate state"));
        let dup_const = ModelSource {
            states: vec![("x".into(), "-k*x".into())],
            consts: vec![("k".into(), 1.0), ("k".into(), 2.0)],
        };
        assert!(dup_const.build().unwrap_err().contains("duplicate const"));
    }

    #[test]
    fn numeric_seeds_at_or_above_2_53_are_rejected() {
        // 2^53 as a plain JSON number is ambiguous (2^53 + 1 rounds to
        // it), so the decoder demands the string form there.
        let line = r#"{"op":"query","model":"m","seed":9007199254740992,"query":{"type":"stability","region":[[-1,1]],"r_min":0.1,"r_max":0.5}}"#;
        assert!(Request::from_line(line).is_err());
        // The same value as a string is accepted.
        let line = r#"{"op":"query","model":"m","seed":"9007199254740992","query":{"type":"stability","region":[[-1,1]],"r_min":0.1,"r_max":0.5}}"#;
        let req = Request::from_line(line).unwrap();
        let Request::Query(qr) = req else {
            unreachable!()
        };
        assert_eq!(qr.seed, 1 << 53);
        // Below the boundary, numbers are fine.
        let line = r#"{"op":"query","model":"m","seed":9007199254740991,"query":{"type":"stability","region":[[-1,1]],"r_min":0.1,"r_max":0.5}}"#;
        assert!(Request::from_line(line).is_ok());
    }

    #[test]
    fn non_finite_wire_numerics_are_rejected_at_build() {
        let mut cx = Context::new();
        cx.intern_var("x");
        // Infinite horizon (what "1e999" parses to).
        let q = QuerySpec::Estimate {
            smc: SmcSpecWire {
                init: vec![DistSpec::Point(1.0)],
                params: vec![],
                property: PropSpec::True,
                t_end: f64::INFINITY,
            },
            method: MethodSpec::Fixed { n: 1 },
        };
        assert!(q.build(&mut cx).unwrap_err().contains("t_end"));
        // Infinite property bound.
        let q = QuerySpec::Estimate {
            smc: SmcSpecWire {
                init: vec![DistSpec::Point(1.0)],
                params: vec![],
                property: PropSpec::Eventually {
                    bound: f64::INFINITY,
                    inner: Box::new(PropSpec::True),
                },
                t_end: 1.0,
            },
            method: MethodSpec::Fixed { n: 1 },
        };
        assert!(q.build(&mut cx).is_err());
        // NaN distribution parameter.
        let q = QuerySpec::Robustness {
            smc: SmcSpecWire {
                init: vec![DistSpec::Uniform(0.0, f64::NAN)],
                params: vec![],
                property: PropSpec::True,
                t_end: 1.0,
            },
            samples: 1,
        };
        assert!(q.build(&mut cx).is_err());
        // Infinite stability radius and inverted region.
        let q = QuerySpec::Stability {
            region: vec![(-1.0, 1.0)],
            r_min: 0.1,
            r_max: f64::INFINITY,
        };
        assert!(q.build(&mut cx).is_err());
        let q = QuerySpec::Stability {
            region: vec![(1.0, -1.0)],
            r_min: 0.1,
            r_max: 0.5,
        };
        assert!(q.build(&mut cx).unwrap_err().contains("empty"));
    }

    #[test]
    fn malformed_requests_error_cleanly() {
        for line in [
            "",
            "{}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"query\",\"model\":\"m\"}",
            "{\"op\":\"register\",\"model\":\"m\"}",
            "not json at all",
        ] {
            assert!(Request::from_line(line).is_err(), "{line:?}");
        }
    }

    #[test]
    fn report_serialization_includes_fingerprint() {
        use biocheck_engine::{Outcome, Provenance, QueryKind};
        let report = Report {
            kind: QueryKind::Robustness,
            outcome: Outcome::Complete,
            value: Value::Robustness(biocheck_engine::RobustnessSummary {
                p_hat: 0.5,
                mean: 1.25,
                min: f64::NEG_INFINITY,
            }),
            provenance: Provenance {
                seed: 3,
                samples: 10,
                ..Provenance::default()
            },
        };
        let json = report_to_json(&report);
        assert_eq!(
            json.get("fingerprint").and_then(Json::as_str),
            Some(report.fingerprint().as_str())
        );
        // -inf travels as null, not as a panic or invalid JSON.
        assert_eq!(json.get("value").unwrap().get("min"), Some(&Json::Null));
        let line = json.render();
        assert_eq!(parse_json(&line).unwrap(), json);
    }
}
