//! Property tests: interval evaluation encloses point evaluation on random
//! expressions; printing round-trips; differentiation matches finite
//! differences; substitution preserves semantics.

use biocheck_expr::{Context, NodeId};
use biocheck_interval::{IBox, Interval};
use proptest::prelude::*;

/// A machine-generatable expression sketch over two variables.
#[derive(Clone, Debug)]
enum Gen {
    X,
    Y,
    C(f64),
    Add(Box<Gen>, Box<Gen>),
    Sub(Box<Gen>, Box<Gen>),
    Mul(Box<Gen>, Box<Gen>),
    Sin(Box<Gen>),
    Cos(Box<Gen>),
    Exp(Box<Gen>),
    Tanh(Box<Gen>),
    PowI(Box<Gen>, i32),
}

fn gen_expr() -> impl Strategy<Value = Gen> {
    let leaf = prop_oneof![Just(Gen::X), Just(Gen::Y), (-2.0..2.0f64).prop_map(Gen::C),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Gen::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Gen::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Gen::Mul(a.into(), b.into())),
            inner.clone().prop_map(|a| Gen::Sin(a.into())),
            inner.clone().prop_map(|a| Gen::Cos(a.into())),
            inner.clone().prop_map(|a| Gen::Exp(a.into())),
            inner.clone().prop_map(|a| Gen::Tanh(a.into())),
            (inner, 1..4i32).prop_map(|(a, n)| Gen::PowI(a.into(), n)),
        ]
    })
}

fn materialize(cx: &mut Context, g: &Gen) -> NodeId {
    match g {
        Gen::X => cx.var("x"),
        Gen::Y => cx.var("y"),
        Gen::C(v) => cx.constant(*v),
        Gen::Add(a, b) => {
            let (a, b) = (materialize(cx, a), materialize(cx, b));
            cx.add(a, b)
        }
        Gen::Sub(a, b) => {
            let (a, b) = (materialize(cx, a), materialize(cx, b));
            cx.sub(a, b)
        }
        Gen::Mul(a, b) => {
            let (a, b) = (materialize(cx, a), materialize(cx, b));
            cx.mul(a, b)
        }
        Gen::Sin(a) => {
            let a = materialize(cx, a);
            cx.sin(a)
        }
        Gen::Cos(a) => {
            let a = materialize(cx, a);
            cx.cos(a)
        }
        Gen::Exp(a) => {
            let a = materialize(cx, a);
            cx.exp(a)
        }
        Gen::Tanh(a) => {
            let a = materialize(cx, a);
            cx.tanh(a)
        }
        Gen::PowI(a, n) => {
            let a = materialize(cx, a);
            cx.powi(a, *n)
        }
    }
}

fn fresh(g: &Gen) -> (Context, NodeId) {
    let mut cx = Context::new();
    // Pin variable order: x = 0, y = 1 regardless of occurrence order.
    cx.intern_var("x");
    cx.intern_var("y");
    let id = materialize(&mut cx, g);
    (cx, id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interval_eval_encloses_point_eval(
        g in gen_expr(),
        x0 in -1.5..1.5f64, w0 in 0.0..0.8f64,
        y0 in -1.5..1.5f64, w1 in 0.0..0.8f64,
        tx in 0.0..1.0f64, ty in 0.0..1.0f64,
    ) {
        let (cx, id) = fresh(&g);
        let bx = IBox::new(vec![
            Interval::new(x0, x0 + w0),
            Interval::new(y0, y0 + w1),
        ]);
        let enc = cx.eval_interval(id, &bx);
        let px = x0 + tx * w0;
        let py = y0 + ty * w1;
        let v = cx.eval(id, &[px, py]);
        prop_assert!(v.is_finite());
        prop_assert!(enc.contains(v), "enclosure {enc:?} missing {v}");
    }

    #[test]
    fn print_parse_roundtrip(g in gen_expr(), px in -1.0..1.0f64, py in -1.0..1.0f64) {
        let (mut cx, id) = fresh(&g);
        let printed = cx.display(id);
        let id2 = cx.parse(&printed).unwrap();
        let v1 = cx.eval(id, &[px, py]);
        let v2 = cx.eval(id2, &[px, py]);
        prop_assert!(
            (v1 - v2).abs() <= 1e-9 * (1.0 + v1.abs()),
            "`{printed}`: {v1} vs {v2}"
        );
    }

    #[test]
    fn derivative_matches_finite_difference(g in gen_expr(), px in -1.0..1.0f64, py in -1.0..1.0f64) {
        let (mut cx, id) = fresh(&g);
        let x = cx.var_id("x").unwrap();
        let d = cx.diff(id, x);
        let env = [px, py];
        let sym = cx.eval(d, &env);
        let h = 1e-5;
        let num = (cx.eval(id, &[px + h, py]) - cx.eval(id, &[px - h, py])) / (2.0 * h);
        // Generated expressions are smooth; tolerate growth from products.
        prop_assert!(
            (sym - num).abs() <= 1e-3 * (1.0 + sym.abs().max(num.abs())),
            "symbolic {sym} vs numeric {num}"
        );
    }

    #[test]
    fn subst_with_self_is_identity(g in gen_expr(), px in -1.0..1.0f64, py in -1.0..1.0f64) {
        let (mut cx, id) = fresh(&g);
        let x = cx.var_id("x").unwrap();
        let xn = cx.var_node(x);
        let id2 = cx.subst(id, &std::collections::HashMap::from([(x, xn)]));
        prop_assert_eq!(id2, id);
        let _ = (px, py);
    }

    #[test]
    fn program_agrees_with_context(g in gen_expr(), px in -1.0..1.0f64, py in -1.0..1.0f64) {
        // The compile-time optimizations (folding, CSE, pair fusion) are
        // all bit-exact, so the compiled program must reproduce the graph
        // interpreter to the last bit — not merely within a tolerance.
        let (cx, id) = fresh(&g);
        let prog = biocheck_expr::Program::compile(&cx, &[id]);
        let mut out = [0.0f64];
        prog.eval_into(&[px, py], &mut out);
        let direct = cx.eval(id, &[px, py]);
        prop_assert!(
            out[0].to_bits() == direct.to_bits(),
            "compiled {} vs graph {direct}", out[0]
        );
    }

    #[test]
    fn program_interval_agrees_with_context(
        g in gen_expr(),
        x0 in -1.5..1.5f64, w0 in 0.0..0.8f64,
        y0 in -1.5..1.5f64, w1 in 0.0..0.8f64,
    ) {
        // Fused instructions decompose into the identical interval
        // operations, so enclosures match the graph evaluator exactly.
        let (cx, id) = fresh(&g);
        let prog = biocheck_expr::Program::compile(&cx, &[id]);
        let bx = IBox::new(vec![
            Interval::new(x0, x0 + w0),
            Interval::new(y0, y0 + w1),
        ]);
        let mut out = [Interval::ZERO];
        prog.eval_interval_into(&bx, &mut out);
        prop_assert_eq!(out[0], cx.eval_interval(id, &bx));
    }
}
