//! RAII span timers and point events with a pluggable global
//! [`Recorder`].
//!
//! The facade is designed to be left in hot paths permanently: until
//! [`set_recorder`] installs a recorder, [`Span::enter`] is one
//! relaxed atomic load — it never reads the clock and `Drop` does
//! nothing. With a recorder installed, each span reports its static
//! name and elapsed nanoseconds exactly once, on drop.
//!
//! ```
//! let _guard = biocheck_obs::span!("serve.request");
//! // ... timed work; the span reports when `_guard` drops ...
//! ```
//!
//! The recorder is process-global and installable once (libraries
//! cannot fight over it); `biocheckd --trace` installs a
//! stderr-printing recorder at startup.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Sink for span timings and point events. Implementations must be
/// cheap and non-blocking — they run inline on the instrumented
/// thread.
pub trait Recorder: Send + Sync + 'static {
    /// Called once per completed span with its elapsed wall time.
    fn span(&self, name: &'static str, elapsed_ns: u64);

    /// Called for point-in-time [`event`]s. Default: ignored.
    fn event(&self, name: &'static str, detail: &str) {
        let _ = (name, detail);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<Box<dyn Recorder>> = OnceLock::new();

/// Installs the process-global recorder and enables the facade.
/// Returns the recorder back if one was already installed.
pub fn set_recorder(recorder: Box<dyn Recorder>) -> Result<(), Box<dyn Recorder>> {
    RECORDER.set(recorder)?;
    ENABLED.store(true, Ordering::Release);
    Ok(())
}

/// Whether a recorder is installed (spans and events are live).
pub fn recorder_installed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Reports a point-in-time event to the recorder, if one is
/// installed. `detail` is free-form context (an id, a count, ...).
pub fn event(name: &'static str, detail: &str) {
    if recorder_installed() {
        if let Some(r) = RECORDER.get() {
            r.event(name, detail);
        }
    }
}

/// An RAII span timer: reports `name` and its elapsed time to the
/// global recorder when dropped. Construct with [`Span::enter`] or
/// the [`span!`](crate::span!) macro. A span created while no
/// recorder is installed holds no start time and its drop is free.
#[must_use = "a span times its enclosing scope; bind it to a local"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span. Reads the clock only if a recorder is installed.
    pub fn enter(name: &'static str) -> Span {
        let start = if recorder_installed() {
            Some(Instant::now())
        } else {
            None
        };
        Span { name, start }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            if let Some(r) = RECORDER.get() {
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                r.span(self.name, ns);
            }
        }
    }
}

/// Opens an RAII [`Span`] timing the enclosing scope:
/// `let _s = biocheck_obs::span!("phase.name");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    struct Counting {
        spans: Arc<AtomicU64>,
        events: Arc<AtomicU64>,
    }

    impl Recorder for Counting {
        fn span(&self, name: &'static str, elapsed_ns: u64) {
            assert_eq!(name, "test.span");
            // Even an empty scope takes some nonzero time once timed.
            let _ = elapsed_ns;
            self.spans.fetch_add(1, Ordering::Relaxed);
        }

        fn event(&self, _name: &'static str, _detail: &str) {
            self.events.fetch_add(1, Ordering::Relaxed);
        }
    }

    // One test for the whole global-state lifecycle: the recorder can
    // only be installed once per process, so ordering within a single
    // test is the only way to cover before/after behavior.
    #[test]
    fn recorder_lifecycle() {
        // Disabled: spans are inert, events are dropped.
        {
            let s = Span::enter("test.span");
            assert!(s.start.is_none());
        }
        event("ignored", "no recorder yet");

        let spans = Arc::new(AtomicU64::new(0));
        let events = Arc::new(AtomicU64::new(0));
        assert!(set_recorder(Box::new(Counting {
            spans: Arc::clone(&spans),
            events: Arc::clone(&events),
        }))
        .is_ok());
        assert!(recorder_installed());
        // Second install is rejected and hands the recorder back.
        assert!(set_recorder(Box::new(Counting {
            spans: Arc::clone(&spans),
            events: Arc::clone(&events),
        }))
        .is_err());

        {
            let _s = crate::span!("test.span");
        }
        {
            let _s = Span::enter("test.span");
        }
        event("test.event", "detail");
        assert_eq!(spans.load(Ordering::Relaxed), 2);
        assert_eq!(events.load(Ordering::Relaxed), 1);
    }
}
