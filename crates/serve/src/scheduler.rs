//! Fair FIFO admission control with load shedding.
//!
//! The engine parallelizes *inside* a query over the global
//! work-stealing pool, so running every incoming request concurrently
//! would oversubscribe the pool and let late arrivals race ahead of
//! early ones. The [`Scheduler`] multiplexes instead: callers wait in
//! [`Scheduler::admit`] and are admitted strictly in arrival order
//! (ticket-based), at most `capacity` at a time. Each admitted request
//! then uses the full rayon pool for its own parallel sampling.
//!
//! Unlike a plain FIFO gate the queue is **bounded**: when `max_queue`
//! callers are already waiting, further arrivals are shed immediately
//! with [`AdmitError::Overloaded`] (carrying a retry-after hint)
//! instead of growing the queue without limit. Waiters can also leave
//! the queue early — on a per-request queue deadline, on a raised
//! cancellation flag, or when the scheduler starts draining for
//! shutdown — without wedging the FIFO order: abandoned tickets are
//! recorded and skipped when the admission cursor reaches them.
//!
//! Determinism: admission order affects only *when* a query runs, never
//! its result — every engine query is bit-deterministic in
//! `(model, query, seed, count-budget)` at any pool width — so the
//! scheduler needs no result-ordering machinery, just fairness.

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Why [`Scheduler::admit`] refused (or stopped waiting for) a slot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdmitError {
    /// The wait queue is full; the request was shed without queueing.
    /// `retry_after_ms` is a backoff hint scaled to the current backlog.
    Overloaded {
        /// Queue length observed at shed time.
        queue_depth: usize,
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The per-request queue deadline elapsed before a slot freed up.
    Expired {
        /// How long the request waited before expiring.
        waited: Duration,
    },
    /// The request's cancellation flag was raised while queued.
    Cancelled,
    /// The scheduler is draining: no new work is admitted.
    ShuttingDown,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Overloaded {
                queue_depth,
                retry_after_ms,
            } => write!(
                f,
                "server overloaded ({queue_depth} queued); retry in {retry_after_ms} ms"
            ),
            AdmitError::Expired { waited } => {
                write!(f, "queue deadline expired after {} ms", waited.as_millis())
            }
            AdmitError::Cancelled => write!(f, "cancelled while queued"),
            AdmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

/// Waiting-room conditions for one [`Scheduler::admit`] call.
#[derive(Default)]
pub struct AdmitWait<'a> {
    /// Give up with [`AdmitError::Expired`] after waiting this long.
    pub deadline: Option<Duration>,
    /// Give up with [`AdmitError::Cancelled`] once this flag is raised.
    pub cancel: Option<&'a AtomicBool>,
}

struct State {
    /// Next ticket to hand out.
    next_ticket: u64,
    /// The ticket allowed to enter next (tickets below it have entered
    /// or been abandoned).
    next_to_admit: u64,
    /// Currently admitted requests.
    running: usize,
    /// Tickets handed out but not yet admitted or abandoned.
    queued: usize,
    /// Tickets whose holder left the queue (deadline, cancel, drain);
    /// the admission cursor skips over them.
    abandoned: HashSet<u64>,
    /// Set by [`Scheduler::drain`]: refuse new work, let in-flight
    /// requests finish.
    draining: bool,
}

/// A FIFO admission gate with bounded concurrency and a bounded queue.
pub struct Scheduler {
    capacity: usize,
    max_queue: usize,
    state: Mutex<State>,
    cv: Condvar,
    shed: AtomicU64,
    expired: AtomicU64,
    queue_high_water: AtomicU64,
}

/// Mutex recovery: scheduler state is only ever mutated under the lock
/// by panic-free arithmetic, so a poisoned mutex (a panic elsewhere in
/// a holder's unwind path) leaves consistent state behind — keep going.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    /// Creates a scheduler admitting at most `capacity` requests at a
    /// time (clamped to ≥ 1), with a wait queue of `8 * capacity`.
    pub fn new(capacity: usize) -> Scheduler {
        let capacity = capacity.max(1);
        Scheduler::with_queue(capacity, 8 * capacity)
    }

    /// Creates a scheduler with an explicit queue bound (both clamped
    /// to ≥ 1).
    pub fn with_queue(capacity: usize, max_queue: usize) -> Scheduler {
        Scheduler {
            capacity: capacity.max(1),
            max_queue: max_queue.max(1),
            state: Mutex::new(State {
                next_ticket: 0,
                next_to_admit: 0,
                running: 0,
                queued: 0,
                abandoned: HashSet::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
        }
    }

    /// The concurrency bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The wait-queue bound.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// Requests currently admitted (racy snapshot, for stats).
    pub fn in_flight(&self) -> usize {
        relock(self.state.lock()).running
    }

    /// Requests currently waiting for a slot (racy snapshot, for stats).
    pub fn queue_depth(&self) -> usize {
        relock(self.state.lock()).queued
    }

    /// Deepest the wait queue has ever been since startup. Read
    /// together with [`Scheduler::max_queue`]: a high-water mark at the
    /// bound means the daemon has shed load at least once.
    pub fn queue_high_water(&self) -> u64 {
        self.queue_high_water.load(Ordering::Relaxed)
    }

    /// Requests shed with [`AdmitError::Overloaded`] since startup.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests that left the queue via [`AdmitError::Expired`].
    pub fn expired_count(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Stops admitting new work (current and future `admit` calls fail
    /// with [`AdmitError::ShuttingDown`]) and returns once every
    /// already-admitted request has released its [`Permit`].
    pub fn drain(&self) {
        let mut state = relock(self.state.lock());
        state.draining = true;
        self.cv.notify_all();
        while state.running > 0 {
            state = relock(self.cv.wait(state));
        }
    }

    /// Whether [`Scheduler::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        relock(self.state.lock()).draining
    }

    /// Waits until this caller is at the front of the queue AND a
    /// concurrency slot is free, then enters. The returned [`Permit`]
    /// releases the slot on drop.
    ///
    /// Refuses immediately when the queue is full ([`AdmitError::Overloaded`])
    /// or the scheduler is draining; stops waiting when `wait.deadline`
    /// elapses or `wait.cancel` is raised.
    pub fn admit(&self, wait: AdmitWait<'_>) -> Result<Permit<'_>, AdmitError> {
        let start = Instant::now();
        let mut state = relock(self.state.lock());
        if state.draining {
            return Err(AdmitError::ShuttingDown);
        }
        if wait.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            return Err(AdmitError::Cancelled);
        }
        if state.queued >= self.max_queue {
            let queue_depth = state.queued;
            drop(state);
            self.shed.fetch_add(1, Ordering::Relaxed);
            // Backoff hint scaled to backlog: a full queue of N behind a
            // capacity of C suggests roughly N/C service periods of wait.
            let retry_after_ms =
                ((queue_depth as u64 * 50) / self.capacity as u64).clamp(50, 5_000);
            return Err(AdmitError::Overloaded {
                queue_depth,
                retry_after_ms,
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queued += 1;
        self.queue_high_water
            .fetch_max(state.queued as u64, Ordering::Relaxed);
        loop {
            // Advance the cursor past tickets whose holders gave up.
            loop {
                let cursor = state.next_to_admit;
                if !state.abandoned.remove(&cursor) {
                    break;
                }
                state.next_to_admit += 1;
            }
            if state.next_to_admit == ticket && state.running < self.capacity {
                state.next_to_admit += 1;
                state.queued -= 1;
                state.running += 1;
                drop(state);
                // Wake the next ticket holder: with capacity > 1 it may
                // be admissible immediately.
                self.cv.notify_all();
                return Ok(Permit { scheduler: self });
            }
            let leave = if state.draining {
                Some(AdmitError::ShuttingDown)
            } else if wait.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                Some(AdmitError::Cancelled)
            } else if wait.deadline.is_some_and(|d| start.elapsed() >= d) {
                self.expired.fetch_add(1, Ordering::Relaxed);
                Some(AdmitError::Expired {
                    waited: start.elapsed(),
                })
            } else {
                None
            };
            if let Some(err) = leave {
                state.queued -= 1;
                if state.next_to_admit == ticket {
                    state.next_to_admit += 1;
                } else {
                    state.abandoned.insert(ticket);
                }
                drop(state);
                self.cv.notify_all();
                return Err(err);
            }
            // Cancellation raises a flag without touching our condvar,
            // so cap the sleep when either early-exit condition needs
            // polling; plain waiters sleep until notified.
            let poll = match (wait.deadline, wait.cancel) {
                (None, None) => None,
                (Some(d), None) => Some(d.saturating_sub(start.elapsed())),
                _ => Some(Duration::from_millis(10)),
            };
            state = match poll {
                None => relock(self.cv.wait(state)),
                Some(timeout) => {
                    let timeout = timeout.max(Duration::from_millis(1));
                    match self.cv.wait_timeout(state, timeout) {
                        Ok((guard, _)) => guard,
                        Err(poisoned) => poisoned.into_inner().0,
                    }
                }
            };
        }
    }
}

/// An admitted execution slot; dropping it releases the slot and wakes
/// the queue.
#[must_use = "the permit IS the execution slot"]
pub struct Permit<'a> {
    scheduler: &'a Scheduler,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = relock(self.scheduler.state.lock());
        state.running -= 1;
        drop(state);
        self.scheduler.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn admit(s: &Scheduler) -> Permit<'_> {
        s.admit(AdmitWait::default()).expect("admission failed")
    }

    #[test]
    fn capacity_bounds_concurrency() {
        let sched = Arc::new(Scheduler::new(2));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let (sched, peak, live) = (sched.clone(), peak.clone(), live.clone());
                std::thread::spawn(move || {
                    let _permit = admit(&sched);
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "capacity exceeded");
        assert_eq!(sched.in_flight(), 0);
    }

    #[test]
    fn admission_is_fifo_at_capacity_one() {
        // Thread i takes ticket i (handshake-ordered), so admissions
        // must complete in exactly that order.
        let sched = Arc::new(Scheduler::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = admit(&sched); // hold the slot so everyone queues
        let ready = Arc::new(std::sync::Barrier::new(2));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let (sched, order, ready2) = (sched.clone(), order.clone(), ready.clone());
                let h = std::thread::spawn(move || {
                    ready2.wait(); // ticket order == spawn order
                    let _permit = admit(&sched);
                    order.lock().unwrap().push(i);
                });
                // Wait until the thread is about to take its ticket,
                // then give it time to actually take it before spawning
                // the next one. (Ticket draw races are sub-microsecond;
                // the barrier + sleep makes the order reliable.)
                ready.wait();
                std::thread::sleep(std::time::Duration::from_millis(5));
                h
            })
            .collect();
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn full_queue_sheds_with_retry_hint() {
        let sched = Arc::new(Scheduler::with_queue(1, 2));
        let gate = admit(&sched);
        // Two waiters fill the queue.
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let sched = sched.clone();
                std::thread::spawn(move || {
                    let _p = admit(&sched);
                })
            })
            .collect();
        while sched.queue_depth() < 2 {
            std::thread::yield_now();
        }
        // The third arrival is shed immediately.
        match sched.admit(AdmitWait::default()) {
            Err(AdmitError::Overloaded {
                queue_depth,
                retry_after_ms,
            }) => {
                assert_eq!(queue_depth, 2);
                assert!(retry_after_ms >= 50);
            }
            other => panic!("expected Overloaded, got {:?}", other.err()),
        }
        assert_eq!(sched.shed_count(), 1);
        drop(gate);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(sched.queue_depth(), 0);
    }

    #[test]
    fn queue_deadline_expires() {
        let sched = Scheduler::new(1);
        let _gate = admit(&sched);
        let start = Instant::now();
        let r = sched.admit(AdmitWait {
            deadline: Some(Duration::from_millis(30)),
            cancel: None,
        });
        assert!(
            matches!(r, Err(AdmitError::Expired { .. })),
            "{:?}",
            r.err()
        );
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(sched.expired_count(), 1);
        assert_eq!(
            sched.queue_depth(),
            0,
            "expired waiter must leave the queue"
        );
    }

    #[test]
    fn cancel_while_queued_removes_ticket() {
        let sched = Arc::new(Scheduler::new(1));
        let gate = admit(&sched);
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (sched, flag) = (sched.clone(), flag.clone());
            std::thread::spawn(move || {
                sched
                    .admit(AdmitWait {
                        deadline: None,
                        cancel: Some(&flag),
                    })
                    .map(drop)
            })
        };
        while sched.queue_depth() == 0 {
            std::thread::yield_now();
        }
        flag.store(true, Ordering::Relaxed);
        let r = waiter.join().unwrap();
        assert!(matches!(r, Err(AdmitError::Cancelled)), "{:?}", r.err());
        assert_eq!(sched.queue_depth(), 0, "cancelled ticket must be removed");
        // The abandoned ticket must not wedge later arrivals.
        drop(gate);
        let _p = admit(&sched);
    }

    #[test]
    fn pre_raised_cancel_refused_without_queueing() {
        let sched = Scheduler::new(1);
        let flag = AtomicBool::new(true);
        let r = sched.admit(AdmitWait {
            deadline: None,
            cancel: Some(&flag),
        });
        assert!(matches!(r, Err(AdmitError::Cancelled)));
        assert_eq!(sched.queue_depth(), 0);
    }

    #[test]
    fn drain_refuses_new_and_waits_for_running() {
        let sched = Arc::new(Scheduler::new(2));
        let permit = admit(&sched);
        let released = Arc::new(AtomicBool::new(false));
        let drainer = {
            let (sched, released) = (sched.clone(), released.clone());
            std::thread::spawn(move || {
                sched.drain();
                assert!(
                    released.load(Ordering::SeqCst),
                    "drain returned before the in-flight permit was released"
                );
            })
        };
        while !sched.is_draining() {
            std::thread::yield_now();
        }
        // New arrivals (and queued waiters) are refused while draining.
        assert!(matches!(
            sched.admit(AdmitWait::default()),
            Err(AdmitError::ShuttingDown)
        ));
        released.store(true, Ordering::SeqCst);
        drop(permit);
        drainer.join().unwrap();
        assert!(matches!(
            sched.admit(AdmitWait::default()),
            Err(AdmitError::ShuttingDown)
        ));
    }

    #[test]
    fn drain_unblocks_queued_waiters() {
        let sched = Arc::new(Scheduler::new(1));
        let gate = admit(&sched);
        let waiter = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.admit(AdmitWait::default()).map(drop))
        };
        while sched.queue_depth() == 0 {
            std::thread::yield_now();
        }
        let drainer = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.drain())
        };
        let r = waiter.join().unwrap();
        assert!(matches!(r, Err(AdmitError::ShuttingDown)), "{:?}", r.err());
        drop(gate);
        drainer.join().unwrap();
    }

    #[test]
    fn permit_released_on_panic() {
        // A panic between admit and completion must release the slot
        // (RAII drop during unwind) and leave the lock usable.
        let sched = Arc::new(Scheduler::new(1));
        let sched2 = sched.clone();
        let r = std::thread::spawn(move || {
            let _permit = admit(&sched2);
            panic!("executor blew up");
        })
        .join();
        assert!(r.is_err());
        assert_eq!(sched.in_flight(), 0, "permit leaked on panic");
        // Slot is reusable and the (possibly poisoned) lock still works.
        let _p = admit(&sched);
        assert_eq!(sched.in_flight(), 1);
    }

    #[test]
    fn hammer_64_threads_respects_cap_and_drains_clean() {
        let sched = Arc::new(Scheduler::with_queue(3, 64));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let shed = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let (sched, peak, live, done, shed) = (
                    sched.clone(),
                    peak.clone(),
                    live.clone(),
                    done.clone(),
                    shed.clone(),
                );
                std::thread::spawn(move || {
                    let wait = AdmitWait {
                        // A third of the threads carry a tight deadline.
                        deadline: (i % 3 == 0).then_some(Duration::from_millis(20)),
                        cancel: None,
                    };
                    match sched.admit(wait) {
                        Ok(_permit) => {
                            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(1));
                            live.fetch_sub(1, Ordering::SeqCst);
                            done.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(_) => {
                            shed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "capacity exceeded");
        assert_eq!(
            done.load(Ordering::SeqCst) + shed.load(Ordering::SeqCst),
            64,
            "every request must resolve exactly once"
        );
        assert_eq!(sched.in_flight(), 0);
        assert_eq!(sched.queue_depth(), 0);
    }
}
