//! A small recursive-descent parser for the expression surface syntax.
//!
//! Grammar (usual precedence, `^` binds tightest and is right-associative):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := unary ('^' factor)?
//! unary   := '-' unary | primary
//! primary := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//! ```
//!
//! Recognized functions: `sqrt exp ln log sin cos tan asin acos atan sinh
//! cosh tanh abs min max pow`.

use crate::context::{Context, NodeId, UnaryOp};
use std::error::Error;
use std::fmt;

/// An error produced while parsing an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error occurred.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
    Comma,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                toks.push((i, Tok::Plus));
                i += 1;
            }
            '-' => {
                toks.push((i, Tok::Minus));
                i += 1;
            }
            '*' => {
                toks.push((i, Tok::Star));
                i += 1;
            }
            '/' => {
                toks.push((i, Tok::Slash));
                i += 1;
            }
            '^' => {
                toks.push((i, Tok::Caret));
                i += 1;
            }
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() && matches!(bytes[i] as char, '0'..='9' | '.') {
                    i += 1;
                }
                // exponent part
                if i < bytes.len() && matches!(bytes[i] as char, 'e' | 'E') {
                    let save = i;
                    i += 1;
                    if i < bytes.len() && matches!(bytes[i] as char, '+' | '-') {
                        i += 1;
                    }
                    if i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    } else {
                        i = save; // not an exponent after all (e.g. `2*e`)
                    }
                }
                let text = &src[start..i];
                let v: f64 = text.parse().map_err(|_| ParseError {
                    position: start,
                    message: format!("invalid number literal `{text}`"),
                })?;
                toks.push((start, Tok::Num(v)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || matches!(bytes[i] as char, '_' | '\''))
                {
                    i += 1;
                }
                toks.push((start, Tok::Ident(src[start..i].to_string())));
            }
            other => {
                return Err(ParseError {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    cx: &'a mut Context,
    strict: bool,
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                position: self.here(),
                message: format!("expected {what}"),
            })
        }
    }

    fn expr(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = self.cx.add(lhs, rhs);
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = self.cx.sub(lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    let rhs = self.factor()?;
                    lhs = self.cx.mul(lhs, rhs);
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    let rhs = self.factor()?;
                    lhs = self.cx.div(lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// `factor := '-' factor | power` — exponentiation binds tighter than
    /// unary minus, so `-2^2` parses as `-(2^2)`.
    fn factor(&mut self) -> Result<NodeId, ParseError> {
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            let inner = self.factor()?;
            Ok(self.cx.neg(inner))
        } else {
            self.power()
        }
    }

    fn power(&mut self) -> Result<NodeId, ParseError> {
        let base = self.primary()?;
        if self.peek() == Some(&Tok::Caret) {
            self.pos += 1;
            let exp = self.factor()?; // right-associative; allows 2^-3
            Ok(self.cx.pow(base, exp))
        } else {
            Ok(base)
        }
    }

    fn primary(&mut self) -> Result<NodeId, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Num(v)) => Ok(self.cx.constant(v)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let mut args = vec![self.expr()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                        args.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen, "`)` after function arguments")?;
                    self.apply(&name, args, at)
                } else {
                    if self.strict && self.cx.var_id(&name).is_none() {
                        return Err(ParseError {
                            position: at,
                            message: format!("unknown variable `{name}`"),
                        });
                    }
                    Ok(self.cx.var(&name))
                }
            }
            _ => Err(ParseError {
                position: at,
                message: "expected a number, variable, function call, or `(`".into(),
            }),
        }
    }

    fn apply(&mut self, name: &str, args: Vec<NodeId>, at: usize) -> Result<NodeId, ParseError> {
        let unary = |op: UnaryOp| (op, 1usize);
        let op1 = match name {
            "sqrt" => Some(unary(UnaryOp::Sqrt)),
            "exp" => Some(unary(UnaryOp::Exp)),
            "ln" | "log" => Some(unary(UnaryOp::Ln)),
            "sin" => Some(unary(UnaryOp::Sin)),
            "cos" => Some(unary(UnaryOp::Cos)),
            "tan" => Some(unary(UnaryOp::Tan)),
            "asin" | "arcsin" => Some(unary(UnaryOp::Asin)),
            "acos" | "arccos" => Some(unary(UnaryOp::Acos)),
            "atan" | "arctan" => Some(unary(UnaryOp::Atan)),
            "sinh" => Some(unary(UnaryOp::Sinh)),
            "cosh" => Some(unary(UnaryOp::Cosh)),
            "tanh" => Some(unary(UnaryOp::Tanh)),
            "abs" => Some(unary(UnaryOp::Abs)),
            _ => None,
        };
        if let Some((op, arity)) = op1 {
            if args.len() != arity {
                return Err(ParseError {
                    position: at,
                    message: format!("`{name}` takes {arity} argument(s), got {}", args.len()),
                });
            }
            return Ok(self.cx.unary(op, args[0]));
        }
        match name {
            "min" | "max" | "pow" => {
                if args.len() != 2 {
                    return Err(ParseError {
                        position: at,
                        message: format!("`{name}` takes 2 arguments, got {}", args.len()),
                    });
                }
                Ok(match name {
                    "min" => self.cx.min(args[0], args[1]),
                    "max" => self.cx.max(args[0], args[1]),
                    _ => self.cx.pow(args[0], args[1]),
                })
            }
            _ => Err(ParseError {
                position: at,
                message: format!("unknown function `{name}`"),
            }),
        }
    }
}

impl Context {
    /// Parses an expression, auto-declaring any new variables it mentions.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first syntax error.
    pub fn parse(&mut self, src: &str) -> Result<NodeId, ParseError> {
        self.parse_inner(src, false)
    }

    /// Parses an expression; mentioning an undeclared variable is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on syntax errors or unknown variables.
    pub fn parse_strict(&mut self, src: &str) -> Result<NodeId, ParseError> {
        self.parse_inner(src, true)
    }

    fn parse_inner(&mut self, src: &str, strict: bool) -> Result<NodeId, ParseError> {
        let toks = lex(src)?;
        let mut p = Parser {
            toks,
            pos: 0,
            cx: self,
            strict,
            src_len: src.len(),
        };
        let e = p.expr()?;
        if p.pos != p.toks.len() {
            return Err(ParseError {
                position: p.here(),
                message: "trailing input after expression".into(),
            });
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        let mut cx = Context::new();
        let e = cx.parse("1 + 2 * 3").unwrap();
        assert_eq!(cx.as_const(e), Some(7.0));
        let e = cx.parse("(1 + 2) * 3").unwrap();
        assert_eq!(cx.as_const(e), Some(9.0));
        let e = cx.parse("2 ^ 3 ^ 2").unwrap(); // right assoc: 2^9
        assert_eq!(cx.as_const(e), Some(512.0));
        let e = cx.parse("-2^2").unwrap(); // -(2^2)
        assert_eq!(cx.as_const(e), Some(-4.0));
        let e = cx.parse("6 / 2 / 3").unwrap(); // left assoc
        assert_eq!(cx.as_const(e), Some(1.0));
        let e = cx.parse("1 - 2 - 3").unwrap();
        assert_eq!(cx.as_const(e), Some(-4.0));
    }

    #[test]
    fn numbers() {
        let mut cx = Context::new();
        for (src, want) in [
            ("1.5e3", 1500.0),
            ("2E-2", 0.02),
            (".5", 0.5),
            ("1e+1", 10.0),
        ] {
            let e = cx.parse(src).unwrap();
            assert_eq!(cx.as_const(e), Some(want), "{src}");
        }
    }

    #[test]
    fn functions() {
        let mut cx = Context::new();
        let e = cx.parse("sin(0) + cos(0)").unwrap();
        assert_eq!(cx.as_const(e), Some(1.0));
        let e = cx.parse("min(3, 5) + max(3, 5)").unwrap();
        assert_eq!(cx.as_const(e), Some(8.0));
        let e = cx.parse("pow(2, 10)").unwrap();
        assert_eq!(cx.as_const(e), Some(1024.0));
        let e = cx.parse("abs(-3)").unwrap();
        assert_eq!(cx.as_const(e), Some(3.0));
    }

    #[test]
    fn variables_autodeclared() {
        let mut cx = Context::new();
        let e = cx.parse("k_on * A' - k_off").unwrap();
        assert_eq!(cx.num_vars(), 3);
        let v = cx.eval(e, &[2.0, 3.0, 1.0]);
        assert_eq!(v, 5.0);
    }

    #[test]
    fn strict_mode_rejects_unknown() {
        let mut cx = Context::new();
        cx.intern_var("x");
        assert!(cx.parse_strict("x + 1").is_ok());
        let err = cx.parse_strict("x + yy").unwrap_err();
        assert!(err.message.contains("unknown variable"));
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn error_positions() {
        let mut cx = Context::new();
        let err = cx.parse("1 + ").unwrap_err();
        assert_eq!(err.position, 4);
        let err = cx.parse("(1 + 2").unwrap_err();
        assert!(err.message.contains(")"));
        let err = cx.parse("1 ? 2").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        let err = cx.parse("sin(1, 2)").unwrap_err();
        assert!(err.message.contains("argument"));
        let err = cx.parse("frob(1)").unwrap_err();
        assert!(err.message.contains("unknown function"));
        let err = cx.parse("1 2").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn ident_e_not_swallowed_by_exponent() {
        // `2*e` must lex as NUM(2) STAR IDENT(e), not a malformed exponent.
        let mut cx = Context::new();
        let e = cx.parse("2*e").unwrap();
        assert_eq!(cx.num_vars(), 1);
        assert_eq!(cx.eval(e, &[3.0]), 6.0);
        // A bare `2e` is NUM(2) followed by trailing IDENT(e): an error.
        assert!(cx.parse("2e").is_err());
    }
}
