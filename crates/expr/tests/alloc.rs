//! Verifies the acceptance criterion of the scratch API: after warm-up,
//! `eval_with` / `eval_interval_with` / `Program::eval_with` perform zero
//! heap allocations per call.
//!
//! This binary holds exactly one test so the global allocation counter is
//! not disturbed by concurrently running tests.

use biocheck_expr::{Context, EvalScratch, Program};
use biocheck_interval::{IBox, Interval};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (ALLOCS.load(Ordering::Relaxed) - before, r)
}

/// Runs `f` up to a few times and asserts that at least one run performs
/// zero heap allocations. The counter is process-global, so a rare
/// background allocation from the test-harness runtime can land inside
/// the measured window; a genuine per-call allocation in `f` would show
/// up in *every* run, so retrying cannot mask a real regression.
fn assert_allocation_free<R>(what: &str, mut f: impl FnMut() -> R) -> R {
    let mut min = usize::MAX;
    for _ in 0..5 {
        let (n, r) = allocations(&mut f);
        min = min.min(n);
        if n == 0 {
            return r;
        }
    }
    panic!("{what} allocated at least {min} times in steady state");
}

#[test]
fn scratch_eval_paths_do_not_allocate() {
    let mut cx = Context::new();
    let f = cx
        .parse("exp(x) * sin(y) + x^3 / (1 + y^2) - tanh(x*y)")
        .unwrap();
    let g = cx
        .parse("max(x, y) * min(x - y, 2) + sqrt(abs(x))")
        .unwrap();
    let prog = Program::compile(&cx, &[f, g]);
    let env = [0.7, -0.3];
    let bx = IBox::new(vec![Interval::new(0.5, 0.9), Interval::new(-0.5, -0.1)]);

    let mut scratch = EvalScratch::new();
    let mut out = [0.0; 2];
    let mut iout = [Interval::ZERO; 2];

    // Warm-up: lets every buffer reach its high-water mark.
    let _ = cx.eval_with(f, &env, &mut scratch);
    cx.eval_many_with(&[f, g], &env, &mut scratch, &mut out);
    let _ = cx.eval_interval_with(f, &bx, &mut scratch);
    prog.eval_with(&env, &mut scratch, &mut out);
    prog.eval_interval_with(&bx, &mut scratch, &mut iout);

    // Steady state: zero allocations over many calls.
    let sum = assert_allocation_free("scratch evaluation", || {
        let mut acc = 0.0;
        for _ in 0..100 {
            acc += cx.eval_with(f, &env, &mut scratch);
            cx.eval_many_with(&[f, g], &env, &mut scratch, &mut out);
            acc += out[1];
            acc += cx.eval_interval_with(g, &bx, &mut scratch).lo();
            prog.eval_with(&env, &mut scratch, &mut out);
            acc += out[0];
            prog.eval_interval_with(&bx, &mut scratch, &mut iout);
            acc += iout[1].hi();
        }
        acc
    });
    assert!(sum.is_finite());
}
