//! Shared step-indexed unrolling machinery.

use biocheck_expr::{Atom, Context, NodeId, VarId};
use biocheck_hybrid::HybridAutomaton;
use std::collections::HashMap;

/// The fresh variables of one unrolled step `i`: entry state `x_i^0`,
/// exit state `x_i^t`, and dwell time `t_i` (Section III-C's encoding
/// introduces exactly these).
#[derive(Clone, Debug)]
pub struct StepVars {
    /// Entry-state variables, one per automaton state variable.
    pub entry: Vec<VarId>,
    /// Exit-state variables.
    pub exit: Vec<VarId>,
    /// Dwell-time variable.
    pub tau: VarId,
}

/// A path encoding: fresh variables for `steps` mode dwells plus the
/// substitution maps used to instantiate model formulas at each step.
#[derive(Clone, Debug)]
pub struct PathEncoding {
    /// Per-step fresh variables.
    pub steps: Vec<StepVars>,
}

impl PathEncoding {
    /// Allocates variables for `n_steps` dwells in `cx`.
    pub fn allocate(cx: &mut Context, states: &[VarId], n_steps: usize) -> PathEncoding {
        let mut steps = Vec::with_capacity(n_steps);
        for i in 0..n_steps {
            let entry = states
                .iter()
                .map(|&s| cx.intern_var(&format!("@{i}_0_{}", cx_name(cx, s))))
                .collect();
            let exit = states
                .iter()
                .map(|&s| cx.intern_var(&format!("@{i}_t_{}", cx_name(cx, s))))
                .collect();
            let tau = cx.intern_var(&format!("@{i}_tau"));
            steps.push(StepVars { entry, exit, tau });
        }
        PathEncoding { steps }
    }

    /// Substitution map sending model state variables to step-`i` entry
    /// variables.
    pub fn entry_map(
        &self,
        cx: &mut Context,
        states: &[VarId],
        i: usize,
    ) -> HashMap<VarId, NodeId> {
        states
            .iter()
            .zip(&self.steps[i].entry)
            .map(|(&s, &v)| (s, cx.var_node(v)))
            .collect()
    }

    /// Substitution map sending model state variables to step-`i` exit
    /// variables.
    pub fn exit_map(&self, cx: &mut Context, states: &[VarId], i: usize) -> HashMap<VarId, NodeId> {
        states
            .iter()
            .zip(&self.steps[i].exit)
            .map(|(&s, &v)| (s, cx.var_node(v)))
            .collect()
    }

    /// Instantiates `atoms` (over model state vars) at step `i`'s entry.
    pub fn atoms_at_entry(
        &self,
        cx: &mut Context,
        states: &[VarId],
        atoms: &[Atom],
        i: usize,
    ) -> Vec<Atom> {
        let map = self.entry_map(cx, states, i);
        atoms
            .iter()
            .map(|a| Atom::new(cx.subst(a.expr, &map), a.op))
            .collect()
    }

    /// Instantiates `atoms` at step `i`'s exit.
    pub fn atoms_at_exit(
        &self,
        cx: &mut Context,
        states: &[VarId],
        atoms: &[Atom],
        i: usize,
    ) -> Vec<Atom> {
        let map = self.exit_map(cx, states, i);
        atoms
            .iter()
            .map(|a| Atom::new(cx.subst(a.expr, &map), a.op))
            .collect()
    }

    /// Reset equalities gluing step `i`'s exit to step `i+1`'s entry for
    /// the given jump (identity where the jump has no reset).
    pub fn glue_atoms(
        &self,
        ha: &HybridAutomaton,
        cx: &mut Context,
        jump_idx: usize,
        i: usize,
    ) -> Vec<Atom> {
        let jump = &ha.jumps[jump_idx];
        let exit_map = self.exit_map(cx, &ha.states, i);
        let mut atoms = Vec::new();
        for (si, &s) in ha.states.iter().enumerate() {
            let next_entry = cx.var_node(self.steps[i + 1].entry[si]);
            let rhs = match jump.resets.iter().find(|(v, _)| *v == s) {
                Some(&(_, expr)) => cx.subst(expr, &exit_map),
                None => cx.var_node(self.steps[i].exit[si]),
            };
            atoms.push(Atom::eq(cx, next_entry, rhs));
        }
        atoms
    }
}

fn cx_name(cx: &Context, v: VarId) -> String {
    cx.var_name(v).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use biocheck_expr::RelOp;

    #[test]
    fn allocation_creates_fresh_vars() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let y = cx.intern_var("y");
        let before = cx.num_vars();
        let enc = PathEncoding::allocate(&mut cx, &[x, y], 3);
        assert_eq!(enc.steps.len(), 3);
        assert_eq!(cx.num_vars(), before + 3 * (2 + 2 + 1));
        // All fresh vars distinct.
        let mut seen = std::collections::HashSet::new();
        for s in &enc.steps {
            for &v in s.entry.iter().chain(&s.exit) {
                assert!(seen.insert(v));
            }
            assert!(seen.insert(s.tau));
        }
    }

    #[test]
    fn substitution_targets_step_vars() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let e = cx.parse("x + 1").unwrap();
        let enc = PathEncoding::allocate(&mut cx, &[x], 2);
        let atoms = enc.atoms_at_exit(&mut cx, &[x], &[Atom::new(e, RelOp::Ge)], 1);
        let vars = cx.vars_of(atoms[0].expr);
        assert!(vars.contains(&enc.steps[1].exit[0]));
        assert!(!vars.contains(&x));
    }

    #[test]
    fn glue_identity_and_reset() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let y = cx.intern_var("y");
        let one = cx.constant(1.0);
        let rhs = cx.parse("x + 1").unwrap();
        let mut ha = HybridAutomaton::new(cx, vec![x, y]);
        let m = ha.add_mode("m", vec![one, one], vec![]);
        // jump resets x := x + 1 and leaves y alone.
        ha.add_jump(m, m, vec![], vec![(x, rhs)]);
        ha.set_init(m, vec![]);
        let mut cx2 = ha.cx.clone();
        let enc = PathEncoding::allocate(&mut cx2, &ha.states, 2);
        let glue = enc.glue_atoms(&ha, &mut cx2, 0, 0);
        assert_eq!(glue.len(), 2);
        // Both atoms are equalities over the step vars.
        for a in &glue {
            assert_eq!(a.op, RelOp::Eq);
        }
        // Evaluate: entry₁ = exit₀ + 1 for x, entry₁ = exit₀ for y.
        let mut env = vec![0.0; cx2.num_vars()];
        env[enc.steps[0].exit[0].index()] = 5.0; // x exit
        env[enc.steps[0].exit[1].index()] = 7.0; // y exit
        env[enc.steps[1].entry[0].index()] = 6.0; // x entry = 5 + 1 ✓
        env[enc.steps[1].entry[1].index()] = 7.0; // y entry = 7 ✓
        for a in &glue {
            assert!(cx2.eval(a.expr, &env).abs() < 1e-12);
        }
    }
}
