//! Budgets and cancellation: a budget-cancelled query returns a
//! well-formed partial [`Report`] with `Outcome::Exhausted` — never a
//! panic, never a corrupted value.

use biocheck_bltl::Bltl;
use biocheck_engine::{
    Budget, CancelToken, EstimateMethod, Outcome, Query, Session, SmcSpec, Value,
};
use biocheck_expr::{Atom, Context, RelOp};
use biocheck_interval::Interval;
use biocheck_ode::OdeSystem;
use biocheck_smc::Dist;
use std::time::Duration;

fn decay_session() -> (Session, Bltl) {
    let mut cx = Context::new();
    let x = cx.intern_var("x");
    let rhs = cx.parse("-x").unwrap();
    let sys = OdeSystem::new(vec![x], vec![rhs]);
    let e = cx.parse("x - 1").unwrap();
    let prop = Bltl::eventually(0.01, Bltl::Prop(Atom::new(e, RelOp::Ge)));
    (Session::from_parts(cx, sys), prop)
}

fn spec(prop: &Bltl) -> SmcSpec {
    SmcSpec {
        init: vec![Dist::Uniform(0.5, 1.5)],
        params: vec![],
        property: prop.clone(),
        t_end: 0.01,
    }
}

#[test]
fn sample_cap_yields_partial_estimate() {
    let (session, prop) = decay_session();
    let q = Query::Estimate {
        smc: spec(&prop),
        method: EstimateMethod::Fixed { n: 500 },
    };
    let capped = session
        .query(q.clone())
        .seed(9)
        .budget(Budget::unlimited().with_max_samples(50))
        .run()
        .unwrap();
    assert_eq!(capped.outcome, Outcome::Exhausted);
    assert_eq!(capped.provenance.samples, 50);
    // The partial estimate is the prefix of the full run's sample
    // stream: p̂ over the first 50 forked-RNG samples.
    let prefix = session
        .query(Query::Estimate {
            smc: spec(&prop),
            method: EstimateMethod::Fixed { n: 50 },
        })
        .seed(9)
        .run()
        .unwrap();
    assert_eq!(prefix.outcome, Outcome::Complete);
    let (Value::Estimate(a), Value::Estimate(b)) = (&capped.value, &prefix.value) else {
        panic!("estimate values expected");
    };
    assert_eq!(a.p_hat.to_bits(), b.p_hat.to_bits());
}

/// An adaptive Bayes run that reaches its own sample cap with the
/// credible interval still open is `Complete` (the cap is the method's
/// own answer) but must not claim the never-earned interval guarantee.
#[test]
fn bayes_at_own_cap_claims_no_guarantee() {
    let (session, prop) = decay_session();
    // p ≈ 0.5 and a 0.005 half-width at 99.9%: 60 samples cannot close
    // the interval.
    let r = session
        .query(Query::Estimate {
            smc: spec(&prop),
            method: EstimateMethod::Bayes {
                half_width: 0.005,
                confidence: 0.999,
                max_samples: 60,
            },
        })
        .seed(5)
        .run()
        .unwrap();
    assert_eq!(r.outcome, Outcome::Complete, "own cap is not exhaustion");
    assert_eq!(r.provenance.samples, 60);
    let Value::Estimate(e) = &r.value else {
        panic!("estimate value expected");
    };
    assert_eq!((e.half_width, e.confidence), (0.0, 0.0));
    assert!(e.p_hat > 0.0 && e.p_hat < 1.0);
}

#[test]
fn pre_cancelled_queries_return_exhausted_everywhere() {
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel(token);

    // SMC query.
    let (session, prop) = decay_session();
    let r = session
        .query(Query::Estimate {
            smc: spec(&prop),
            method: EstimateMethod::Chernoff {
                eps: 0.05,
                delta: 0.05,
            },
        })
        .budget(budget.clone())
        .run()
        .unwrap();
    assert_eq!(r.outcome, Outcome::Exhausted);
    assert_eq!(r.provenance.samples, 0);

    // SPRT.
    let r = session
        .query(Query::Sprt {
            smc: spec(&prop),
            theta: 0.8,
            indiff: 0.05,
            alpha: 0.05,
            beta: 0.05,
            max_samples: 10_000,
        })
        .budget(budget.clone())
        .run()
        .unwrap();
    assert_eq!(r.outcome, Outcome::Exhausted);

    // Calibration (δ-decision side).
    let r = session
        .query(Query::Calibrate {
            data: biocheck_engine::Dataset::full(vec![0.5], vec![vec![0.6]], 0.05),
            init: vec![1.0],
            params: vec![],
            state_bounds: vec![Interval::new(0.0, 2.0)],
            delta: 0.01,
            flow_step: 0.05,
        })
        .budget(budget.clone())
        .run()
        .unwrap();
    assert_eq!(r.outcome, Outcome::Exhausted);
    assert!(matches!(r.value, Value::Calibration(None)));

    // Stability.
    let r = session
        .query(Query::Stability {
            region: vec![Interval::new(-0.5, 0.5)],
            r_min: 0.1,
            r_max: 0.4,
        })
        .budget(budget.clone())
        .run()
        .unwrap();
    assert_eq!(r.outcome, Outcome::Exhausted);
}

#[test]
fn mid_flight_cancellation_is_well_formed() {
    // Cancel from another thread while a long SMC query runs; whichever
    // batch boundary sees the flag first, the report must be coherent.
    let (session, prop) = decay_session();
    let token = CancelToken::new();
    let budget = Budget::unlimited().with_cancel(token.clone());
    std::thread::scope(|scope| {
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel();
        });
        let r = session
            .query(Query::Estimate {
                smc: spec(&prop),
                method: EstimateMethod::Fixed { n: 2_000_000 },
            })
            .seed(5)
            .budget(budget)
            .run()
            .unwrap();
        assert_eq!(r.outcome, Outcome::Exhausted);
        let Value::Estimate(e) = &r.value else {
            panic!("estimate expected")
        };
        assert_eq!(e.samples, r.provenance.samples);
        assert!(e.samples < 2_000_000);
        assert!(e.p_hat >= 0.0 && e.p_hat <= 1.0 || e.samples == 0);
    });
}

#[test]
fn zero_deadline_exhausts_immediately() {
    let (session, prop) = decay_session();
    let r = session
        .query(Query::Robustness {
            smc: spec(&prop),
            samples: 100,
        })
        .budget(Budget::unlimited().with_deadline(Duration::ZERO))
        .run()
        .unwrap();
    assert_eq!(r.outcome, Outcome::Exhausted);
    assert_eq!(r.provenance.samples, 0);
    // The empty partial value is all-zero and finite — no ±inf leaks.
    let Value::Robustness(summary) = &r.value else {
        panic!("robustness summary expected");
    };
    assert_eq!(
        (summary.p_hat, summary.mean, summary.min),
        (0.0, 0.0, 0.0),
        "zero-sample summary must be all-zero"
    );
}

#[test]
fn paver_box_budget_caps_reachability() {
    // A falsification question given almost no split budget comes back
    // Undecided/Exhausted instead of looping or panicking.
    use biocheck_bmc::{ReachOptions, ReachSpec};
    use biocheck_hybrid::HybridAutomaton;
    let mut ha = HybridAutomaton::parse_bha(
        r#"
        state x;
        param k = [0.1, 2.0];
        mode decay { flow: x' = -k*x; }
        init decay: x = 1;
        "#,
    )
    .unwrap();
    let e = ha.cx.parse("0.5 - x").unwrap();
    let spec = ReachSpec {
        goal_mode: None,
        goal: vec![Atom::new(e, RelOp::Ge)],
        k_max: 0,
        time_bound: 5.0,
    };
    let opts = ReachOptions {
        state_bounds: vec![Interval::new(0.0, 2.0)],
        ..ReachOptions::new(0.05)
    };
    let session = Session::from_automaton(&ha);
    let r = session
        .query(Query::Falsify {
            spec: spec.clone(),
            opts: opts.clone(),
        })
        .budget(Budget::unlimited().with_max_paver_boxes(1))
        .run()
        .unwrap();
    // With one split the δ-search cannot decide this instance.
    assert_eq!(r.outcome, Outcome::Exhausted, "{:?}", r.value);
    // Unlimited budget decides it (consistent: x ≤ 0.5 is reachable).
    let r = session.query(Query::Falsify { spec, opts }).run().unwrap();
    assert_eq!(r.outcome, Outcome::Complete);
}
