//! Minimal, dependency-free stand-in for the `rayon` crate, backed by a
//! real work-stealing thread pool.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the rayon API its hot paths use: [`join`],
//! [`scope`] / [`Scope::spawn`], `into_par_iter` / `par_iter` with
//! `map` / `map_init` / `for_each` / `filter` / `collect` / `sum` /
//! `reduce`, and [`current_num_threads`].
//!
//! # Architecture
//!
//! * **Persistent workers.** A global registry starts `N` worker threads
//!   lazily on the first parallel call (`N` from `BIOCHECK_THREADS`,
//!   then `RAYON_NUM_THREADS`, then the available parallelism; `N = 1`
//!   spawns no threads and runs everything inline on the caller).
//! * **Chase–Lev deques.** Each worker owns a deque; it pushes and pops
//!   split-off subproblems at the bottom (LIFO), idle workers steal from
//!   the top (FIFO) — see `deque.rs` for the memory-model details.
//! * **Injector.** External threads submit top-level operations through
//!   a FIFO injector and block on a latch until a worker finishes them.
//! * **Parking.** Idle workers park on a condition variable guarded by a
//!   generation counter; publishers wake them only when the sleeper
//!   count is non-zero, keeping the `join` fast path to one deque push.
//! * **Nested `join`.** A worker calling [`join`] pushes the second
//!   closure onto its own deque, runs the first inline, then pops the
//!   second back (usually still unstolen and cache-hot) or steals other
//!   work while waiting — recursive splitting therefore self-balances
//!   across workers, which is what irregular branch-and-prune frontiers
//!   need.
//! * **Panic propagation.** Panics inside either side of a [`join`], a
//!   parallel iterator closure, or a scope-spawned job are captured and
//!   resumed on the caller, mirroring rayon's semantics.
//!
//! Ordering contract: `map` / `map_init` + `collect` preserve input
//! order exactly, regardless of thread count or stealing schedule, so
//! seeded computations stay deterministic.

mod deque;
mod job;
mod registry;

use job::{CountLatch, HeapJob, PanicPayload, SpinLatch, StackJob};
use registry::Registry;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Number of threads in the pool (1 means all calls run inline).
pub fn current_num_threads() -> usize {
    Registry::global().num_threads()
}

/// Runs both closures, potentially in parallel, returning both results.
///
/// Called from inside the pool, this is the work-stealing primitive: `b`
/// is published on the caller's deque for thieves while the caller runs
/// `a`. Called from outside, the whole pair is handed to the pool. If
/// either closure panics, the panic is resumed here after both have
/// finished (the first panic wins when both do).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = Registry::global();
    if registry.num_threads() <= 1 {
        return (a(), b());
    }
    match Registry::current_worker() {
        Some(index) => join_in_worker(registry, index, a, b),
        None => registry.in_worker(move || join(a, b)),
    }
}

fn join_in_worker<A, B, RA, RB>(registry: &'static Registry, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(SpinLatch::new(), b);
    // SAFETY: this frame blocks on the latch before returning or
    // unwinding, so the job outlives every access through the ref.
    unsafe { registry.push_local(index, job_b.as_job_ref()) };
    let result_a = catch_unwind(AssertUnwindSafe(a));
    // Wait for b: the loop pops our own deque first — in the common case
    // that's `job_b` itself, executed inline and cache-hot — and steals
    // other work otherwise, so no cycles idle while subtrees are uneven.
    // SAFETY: `index` is this thread's own worker index.
    unsafe { registry.wait_until(index, job_b.latch()) };
    match result_a {
        Ok(ra) => (ra, job_b.into_result()),
        // b has finished; discard its result (or panic) and propagate a's.
        Err(payload) => resume_unwind(payload),
    }
}

/// The closure shape a scope accepts (also the variance marker).
type ScopeBody<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A scope for spawning jobs that may borrow from the enclosing frame;
/// [`scope`] returns only after every spawned job has completed.
pub struct Scope<'scope> {
    registry: &'static Registry,
    latch: CountLatch,
    panic: Mutex<Option<PanicPayload>>,
    marker: PhantomData<ScopeBody<'scope>>,
}

#[derive(Copy, Clone)]
struct ScopePtr<'scope>(*const Scope<'scope>);
// SAFETY: the scope outlives all spawned jobs (scope() waits on the
// count latch before returning), and Scope's shared state is Sync.
unsafe impl Send for ScopePtr<'_> {}

impl<'scope> Scope<'scope> {
    fn new(registry: &'static Registry) -> Scope<'scope> {
        Scope {
            registry,
            latch: CountLatch::new(),
            panic: Mutex::new(None),
            marker: PhantomData,
        }
    }

    /// Spawns `body` into the pool. The closure may borrow anything that
    /// outlives the scope; it runs at some point before [`scope`]
    /// returns, on any worker. With a single-thread pool it runs
    /// immediately, inline.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if self.registry.num_threads() <= 1 {
            body(self);
            return;
        }
        self.latch.increment();
        let scope_ptr = ScopePtr(self as *const Scope<'scope>);
        let job = HeapJob::erased(move || {
            // Capture the whole wrapper, not its raw-pointer field
            // (edition-2021 closures capture disjoint fields by default,
            // which would sidestep ScopePtr's Send impl).
            let scope_ptr = scope_ptr;
            // SAFETY: see ScopePtr — the scope is alive until the latch
            // this job decrements has been waited out.
            let scope = unsafe { &*scope_ptr.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(scope))) {
                let mut slot = scope.panic.lock().expect("scope panic slot poisoned");
                slot.get_or_insert(payload);
            }
            scope.latch.decrement();
        });
        match Registry::current_worker() {
            // SAFETY: `index` is the calling thread's own worker index;
            // heap jobs own their data.
            Some(index) => unsafe { self.registry.push_local(index, job) },
            None => self.registry.inject(job),
        }
    }
}

/// Creates a [`Scope`], runs `op` in it on the pool, and waits for every
/// job spawned into the scope. Panics from `op` or any spawned job are
/// resumed here (`op`'s panic wins; among spawned jobs, the first).
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let registry = Registry::global();
    if registry.num_threads() <= 1 {
        // Inline pool: spawns already ran at their spawn sites.
        return op(&Scope::new(registry));
    }
    registry.in_worker(move || {
        let scope = Scope::new(registry);
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        scope.latch.decrement(); // the scope body counts as one job
        let index = Registry::current_worker().expect("scope body runs on a worker");
        // SAFETY: `index` is this worker's own index.
        unsafe { registry.wait_until(index, &scope.latch) };
        match result {
            Ok(r) => {
                let payload = scope
                    .panic
                    .lock()
                    .expect("scope panic slot poisoned")
                    .take();
                if let Some(payload) = payload {
                    resume_unwind(payload);
                }
                r
            }
            Err(payload) => resume_unwind(payload),
        }
    })
}

/// Raw pointer that may cross thread boundaries (indices into disjoint
/// ranges guarantee exclusive access; see the `*_chunks` helpers).
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> Copy for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> SendPtr<T> {
        *self
    }
}

/// Sequential-leaf size for a recursive split of `n` items: small enough
/// to expose parallelism past the split points, large enough that leaf
/// bookkeeping stays negligible.
fn grain_size(n: usize, threads: usize) -> usize {
    (n / (threads * 4)).max(1)
}

/// Moves `items[lo..hi]` through `f` into `dst[lo..hi]`, splitting
/// recursively so thieves can pick up half-ranges.
fn map_chunks<I, T, F>(src: SendPtr<I>, dst: SendPtr<T>, lo: usize, hi: usize, grain: usize, f: &F)
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    if hi - lo <= grain {
        for i in lo..hi {
            // SAFETY: the recursion partitions [0, n) into disjoint
            // ranges; each src slot is read (moved out) exactly once and
            // each dst slot written exactly once.
            unsafe {
                let item = src.0.add(i).read();
                dst.0.add(i).write(f(item));
            }
        }
    } else {
        let mid = lo + (hi - lo) / 2;
        join(
            || map_chunks(src, dst, lo, mid, grain, f),
            || map_chunks(src, dst, mid, hi, grain, f),
        );
    }
}

/// Like [`map_chunks`], but each sequential leaf builds its own state
/// value with `init` first (rayon's `map_init` contract).
fn map_init_chunks<S, I, T, FI, F>(
    src: SendPtr<I>,
    dst: SendPtr<T>,
    lo: usize,
    hi: usize,
    grain: usize,
    init: &FI,
    f: &F,
) where
    I: Send,
    T: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, I) -> T + Sync,
{
    if hi - lo <= grain {
        let mut state = init();
        for i in lo..hi {
            // SAFETY: as in `map_chunks` — disjoint ranges, each slot
            // touched exactly once.
            unsafe {
                let item = src.0.add(i).read();
                dst.0.add(i).write(f(&mut state, item));
            }
        }
    } else {
        let mid = lo + (hi - lo) / 2;
        join(
            || map_init_chunks(src, dst, lo, mid, grain, init, f),
            || map_init_chunks(src, dst, mid, hi, grain, init, f),
        );
    }
}

/// Folds `items[lo..hi]` with `op`, splitting recursively; each leaf
/// starts from `identity()` and sibling results combine with `op`.
fn reduce_chunks<I, ID, F>(
    src: SendPtr<I>,
    lo: usize,
    hi: usize,
    grain: usize,
    identity: &ID,
    op: &F,
) -> I
where
    I: Send,
    ID: Fn() -> I + Sync,
    F: Fn(I, I) -> I + Sync,
{
    if hi - lo <= grain {
        let mut acc = identity();
        for i in lo..hi {
            // SAFETY: disjoint ranges; each slot moved out exactly once.
            let item = unsafe { src.0.add(i).read() };
            acc = op(acc, item);
        }
        acc
    } else {
        let mid = lo + (hi - lo) / 2;
        let (left, right) = join(
            || reduce_chunks(src, lo, mid, grain, identity, op),
            || reduce_chunks(src, mid, hi, grain, identity, op),
        );
        op(left, right)
    }
}

/// Runs `body` over an owned item vector on the pool, handing it raw
/// source/destination pointers, and fixes up lengths afterwards.
///
/// On a panic inside `body` the moved-from source elements and any
/// already-written results are leaked (never double-dropped); the panic
/// then propagates to the caller.
fn with_moved_items<I, T, R>(
    items: Vec<I>,
    run: impl FnOnce(SendPtr<I>, SendPtr<T>, usize) -> R + Send,
) -> (Vec<T>, R)
where
    I: Send,
    T: Send,
    R: Send,
{
    let n = items.len();
    Registry::global().in_worker(move || {
        let mut items = ManuallyDrop::new(items);
        let mut out: Vec<T> = Vec::with_capacity(n);
        let src = SendPtr(items.as_mut_ptr());
        let dst = SendPtr(out.as_mut_ptr());
        let r = run(src, dst, n);
        // SAFETY: `run` moved every element out of `items` and
        // initialized every slot of `out[..n]`.
        unsafe {
            out.set_len(n);
            items.set_len(0);
        }
        drop(ManuallyDrop::into_inner(items)); // frees the source buffer
        (out, r)
    })
}

/// Order-preserving parallel map over an owned item list.
fn par_map_vec<I, T, F>(items: Vec<I>, f: &F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let threads = current_num_threads();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let grain = grain_size(n, threads);
    let (out, ()) = with_moved_items(items, move |src, dst, n| {
        map_chunks(src, dst, 0, n, grain, f);
    });
    out
}

/// An eager parallel iterator: adaptors apply immediately, in parallel.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<T: Send, F: Fn(I) -> T + Sync>(self, f: F) -> ParIter<T> {
        ParIter {
            items: par_map_vec(self.items, &f),
        }
    }

    /// Like `map`, but each sequential leaf of the recursive split first
    /// builds a state value with `init` and threads it through its items
    /// (rayon's `map_init`). Preserves input order.
    pub fn map_init<S, T, FI, F>(self, init: FI, f: F) -> ParIter<T>
    where
        T: Send,
        FI: Fn() -> S + Sync,
        F: Fn(&mut S, I) -> T + Sync,
    {
        let n = self.items.len();
        let threads = current_num_threads();
        if threads <= 1 || n <= 1 {
            let mut state = init();
            return ParIter {
                items: self.items.into_iter().map(|i| f(&mut state, i)).collect(),
            };
        }
        let grain = grain_size(n, threads);
        let init = &init;
        let f = &f;
        let (items, ()) = with_moved_items(self.items, move |src, dst, n| {
            map_init_chunks(src, dst, 0, n, grain, init, f);
        });
        ParIter { items }
    }

    /// Runs `f` on every item in parallel (no results).
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        let _: Vec<()> = par_map_vec(self.items, &|i| f(i));
    }

    /// Parallel filter, preserving order.
    pub fn filter<F: Fn(&I) -> bool + Sync>(self, f: F) -> ParIter<I> {
        let kept = par_map_vec(self.items, &|i| if f(&i) { Some(i) } else { None });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Item count.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Parallel fold-reduce: `identity` seeds each sequential leaf, `op`
    /// combines items and sibling partial results. `op` must be
    /// associative for the result to be schedule-independent (the split
    /// tree is a pure function of the length and thread count).
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I
    where
        ID: Fn() -> I + Sync,
        F: Fn(I, I) -> I + Sync,
    {
        let n = self.items.len();
        let threads = current_num_threads();
        if threads <= 1 || n <= 1 {
            return self.items.into_iter().fold(identity(), op);
        }
        let grain = grain_size(n, threads);
        let identity = &identity;
        let op = &op;
        let (_units, acc) = with_moved_items::<I, (), I>(self.items, move |src, _dst, n| {
            reduce_chunks(src, 0, n, grain, identity, op)
        });
        acc
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_matches_map() {
        let a: Vec<u64> = (0..500u64).into_par_iter().map(|i| i * i).collect();
        let b: Vec<u64> = (0..500u64)
            .into_par_iter()
            .map_init(|| 0u64, |_, i| i * i)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f64, 2.0, 3.0];
        let s: f64 = data.par_iter().map(|&x| x * x).sum();
        assert_eq!(s, 14.0);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn filter_and_count() {
        let n = (0..100usize).into_par_iter().filter(|i| i % 3 == 0).count();
        assert_eq!(n, 34);
    }

    #[test]
    fn reduce_sums() {
        let total = (0..1000u64).into_par_iter().reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn non_copy_items_move_through_map() {
        let strings: Vec<String> = (0..200).map(|i| format!("item-{i}")).collect();
        let lens: Vec<usize> = strings.clone().into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, strings.iter().map(String::len).collect::<Vec<_>>());
    }

    #[test]
    fn scope_spawns_run_before_return() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
