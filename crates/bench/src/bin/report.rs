//! Regenerates the experiment tables (EXPERIMENTS.md content) and the
//! machine-readable perf trajectory `BENCH_<n>.json`:
//!
//! ```text
//! cargo run --release -p biocheck_bench --bin report              # everything
//! cargo run --release -p biocheck_bench --bin report -- --bench-only
//! cargo run --release -p biocheck_bench --bin report -- --bench-version 2
//! ```
//!
//! `--bench-only` skips the (slow) E1–E9 experiment sweep and emits only
//! the perf workloads; `--bench-version <n>` selects the output file name
//! `BENCH_<n>.json` (default 1) so successive PRs accumulate a history.

use biocheck_bench as exp;
use std::time::Instant;

fn run(name: &str, f: impl FnOnce() -> Vec<exp::Row>) -> Vec<exp::Row> {
    let t0 = Instant::now();
    let rows = f();
    eprintln!("{name}: {:?}", t0.elapsed());
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_only = args.iter().any(|a| a == "--bench-only");
    let bench_version: u32 = args
        .iter()
        .position(|a| a == "--bench-version")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    // Perf workloads: sequential vs parallel SMC sampling on the paper's
    // three case-study models → BENCH_<n>.json.
    let t0 = Instant::now();
    let perf = exp::perf::perf_workloads(200, 2020);
    eprintln!("perf workloads: {:?}", t0.elapsed());
    for w in &perf {
        println!(
            "{}: {} samples, seq {:.1}/s, par {:.1}/s, speedup {:.2}x, p̂ = {:.3}, deterministic = {}",
            w.name,
            w.samples,
            w.sequential.samples_per_sec,
            w.parallel.samples_per_sec,
            w.speedup,
            w.p_hat,
            w.deterministic
        );
    }
    let bench_path = format!("BENCH_{bench_version}.json");
    std::fs::write(&bench_path, exp::perf::perf_to_json(&perf, bench_version))
        .unwrap_or_else(|e| panic!("cannot write {bench_path}: {e}"));
    println!("wrote {bench_path}");
    if bench_only {
        return;
    }

    let mut all = Vec::new();
    all.extend(run("E1", exp::e1_cardiac_falsification));
    all.extend(run("E2", exp::e2_parameter_synthesis));
    all.extend(run("E3", exp::e3_prostate));
    all.extend(run("E4", exp::e4_radiation));
    all.extend(run("E5", exp::e5_robustness));
    all.extend(run("E6", exp::e6_lyapunov));
    all.extend(run("E7", exp::e7_smc));
    all.extend(run("E8", || exp::e8_delta_sweep(&[1e-1, 1e-2, 1e-3])));
    all.extend(run("E9", || exp::e9_depth_scaling(3)));
    println!("{}", exp::to_markdown(&all));
    let holds = all.iter().filter(|r| r.holds).count();
    println!("\n{holds}/{} rows match the paper's shape.", all.len());
    let _ = std::fs::write("experiment_results.json", exp::rows_to_json(&all));
}
