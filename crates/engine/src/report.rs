//! The uniform answer type: verdict/estimate payload plus structured
//! provenance and the budget outcome.

use crate::calibrate::Calibration;
use crate::falsify::FalsificationOutcome;
use crate::query::QueryKind;
use crate::stability::StabilityReport;
use crate::therapy::TherapyPlan;
use biocheck_lint::Diagnostic;
use biocheck_smc::{Estimate, SprtResult};
use std::fmt::Write as _;
use std::time::Duration;

/// Did the query run to its natural end, or did a resource bound stop
/// it first?
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The query finished: the value is its full answer.
    Complete,
    /// A budget (sample cap, split cap, cancellation, deadline) stopped
    /// the query mid-flight; the value is a well-formed partial answer
    /// over the work actually performed.
    Exhausted,
}

/// Structured provenance: enough to reproduce or audit the answer.
///
/// The timing fields (`wall_time`, `compile_time`, `run_time`) are
/// observability only and are **excluded from
/// [`Report::fingerprint`]**: two runs of the same seeded query
/// produce fingerprint-identical reports however long they took — the
/// property the batch-determinism and cache-consistency tests pin
/// down. `wall_time` is caller-supplied (time the run yourself and
/// set the field); the phase timings are stamped by the engine on
/// every executed query.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    /// Master seed the per-sample RNG streams were forked from.
    pub seed: u64,
    /// Bernoulli samples actually drawn (0 for δ-decision queries,
    /// whose work is measured in box splits).
    pub samples: usize,
    /// Fraction of drawn samples whose streaming verdict decided before
    /// the simulation horizon (0 when not applicable).
    pub early_stop_rate: f64,
    /// Mean integration samples per draw (0 when not applicable).
    pub avg_steps: f64,
    /// Caller-attached wall time; `None` unless supplied.
    pub wall_time: Option<Duration>,
    /// Time spent acquiring compiled artifacts (RHS program, monitor
    /// plan, sampler) before the solver ran — a cache hit makes this
    /// near-zero. `None` when the report predates instrumentation
    /// (e.g. decoded from an old persistence log); 0 for δ-decision
    /// queries, which lower inline. Excluded from the fingerprint.
    pub compile_time: Option<Duration>,
    /// Time the solver itself ran (execute phase minus artifact
    /// acquisition). `None` when unmeasured. Excluded from the
    /// fingerprint.
    pub run_time: Option<Duration>,
}

/// Summary of a [`Query::Robustness`](crate::Query::Robustness) run.
/// A run stopped by its budget before any sample was drawn reports all
/// fields as 0 (check the report's `provenance.samples`).
#[derive(Copy, Clone, Debug)]
pub struct RobustnessSummary {
    /// Fraction of satisfying samples.
    pub p_hat: f64,
    /// Mean robustness over the drawn samples (index-ordered summation,
    /// hence deterministic).
    pub mean: f64,
    /// Minimum robustness observed (`-inf` when a sampled trajectory's
    /// simulation failed).
    pub min: f64,
}

/// The query-specific payload of a [`Report`].
#[derive(Clone, Debug)]
pub enum Value {
    /// Probability estimate (`Estimate` queries). `half_width` and
    /// `confidence` are non-zero only when the guarantee was actually
    /// earned: a budget-truncated run ([`Outcome::Exhausted`]) zeroes
    /// them, and so does an adaptive Bayes run that reached its own
    /// sample cap with the credible interval still open (which reports
    /// [`Outcome::Complete`] — the cap is the method's own answer —
    /// but claims no interval). The point estimate over the samples
    /// actually drawn is all such runs honestly assert.
    Estimate(Estimate),
    /// Sequential-test verdict (`Sprt` queries).
    Sprt(SprtResult),
    /// Robustness summary (`Robustness` queries).
    Robustness(RobustnessSummary),
    /// Falsification verdict (`Falsify` queries).
    Falsify(FalsificationOutcome),
    /// Synthesized treatment plan, `None` when no schedule exists within
    /// the jump bound (`Therapy` queries).
    Therapy(Option<TherapyPlan>),
    /// δ-sat calibration, `None` on unsat or exhaustion (`Calibrate`
    /// queries; check [`Report::outcome`] to tell the two apart).
    Calibration(Option<Calibration>),
    /// Certified stability report, `None` when no equilibrium was
    /// localized or no certificate found (`Stability` queries).
    Stability(Option<StabilityReport>),
    /// Static analyzer findings, content-sorted and deterministic
    /// (`Lint` queries). An empty list means the model is clean over
    /// the assumed boxes.
    Lint(Vec<Diagnostic>),
}

/// The uniform analysis answer returned by every query.
///
/// Reports are `Clone` so result-level caches (the serving layer's
/// memoization) can hand out copies of a stored answer; a clone
/// fingerprints identically to its original.
#[derive(Clone, Debug)]
pub struct Report {
    /// Which query produced this report.
    pub kind: QueryKind,
    /// Budget outcome.
    pub outcome: Outcome,
    /// The verdict/estimate payload.
    pub value: Value,
    /// Structured provenance.
    pub provenance: Provenance,
}

impl Report {
    /// A deterministic rendering of everything except the caller-supplied
    /// wall time: two reports fingerprint equal iff seed, sample counts,
    /// outcome, and every payload float are bit-identical (floats render
    /// via their shortest round-trip form, which is injective on bit
    /// patterns up to NaN payloads). This is what the par==seq and
    /// cache-consistency tests compare.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{:?}|{:?}|{:?}|seed={} samples={} early={:?} steps={:?}",
            self.kind,
            self.outcome,
            self.value,
            self.provenance.seed,
            self.provenance.samples,
            self.provenance.early_stop_rate,
            self.provenance.avg_steps,
        );
        s
    }
}
