//! Crash-recoverable spill persistence for the result cache.
//!
//! The daemon's memoized results are pure functions of their key (see
//! the memoization contract in [`crate::server`]), which makes them
//! safe to persist across restarts: a warm-started cache hit is
//! `fingerprint()`-identical to a fresh computation. This module keeps
//! them in a versioned, checksummed, append-only log:
//!
//! ```text
//! biocheck-cache v1
//! <fnv1a64 of payload> <payload JSON>
//! <fnv1a64 of payload> <payload JSON>
//! ...
//! ```
//!
//! **Durability model.** Records are appended (and flushed) as they
//! are computed, so a crash — including SIGKILL — loses at most the
//! torn tail record the process was writing. **Loading is
//! corruption-tolerant, never fatal**: a record that fails its
//! checksum, does not parse, or does not decode is counted in
//! [`PersistStats::skipped`] and skipped; a missing or garbled header
//! invalidates only what follows it. Opening then *compacts*: the
//! surviving records are rewritten to a temporary file which is
//! atomically renamed over the log, so corruption never accumulates
//! and the file never holds a partially-written rewrite.
//!
//! **Fidelity.** [`Report::fingerprint`] renders floats in Rust's
//! `Debug` form, which is injective on bit patterns — so the codec
//! stores every float as its exact IEEE-754 bit pattern (16 hex
//! digits), not as a decimal. Non-finite values (a robustness `min` of
//! `-inf`, say) round-trip exactly, which the JSON number grammar
//! could not do. The caller-supplied `wall_time` is deliberately
//! dropped: it is excluded from fingerprints and meaningless across
//! restarts.
//!
//! Only wire-producible reports (`Estimate`, `Sprt`, `Robustness`,
//! `Stability`, `Lint`) are persisted; in-process-only kinds are
//! counted in [`PersistStats::unsupported`] and served from memory as
//! usual.

use crate::json::{parse_json, Json};
use crate::registry::fingerprint64;
use crate::wire::{u64_from_json, u64_to_json};
use biocheck_engine::{
    Diagnostic, Outcome, Provenance, QueryKind, Report, RobustnessSummary, Severity, Value,
};
use biocheck_interval::Interval;
use biocheck_smc::{Estimate, SprtOutcome, SprtResult};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

const HEADER: &str = "biocheck-cache v1";

/// Lifetime counters for one [`CacheLog`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Records successfully recovered at open time.
    pub loaded: usize,
    /// Lines discarded at open time (checksum, parse, or decode
    /// failure — torn tails land here).
    pub skipped: usize,
    /// Records appended since open.
    pub appended: usize,
    /// Append attempts that failed at the I/O layer (the in-memory
    /// cache is unaffected; persistence is best-effort).
    pub append_errors: usize,
    /// Reports that cannot be persisted (non-wire query kinds).
    pub unsupported: usize,
}

/// One record recovered from the log at open time.
pub struct LoadedRecord {
    /// The full memoization key.
    pub key: String,
    /// The byte cost the entry was originally charged.
    pub cost: usize,
    /// The reconstructed report, `fingerprint()`-identical to the one
    /// that was stored.
    pub report: Report,
}

/// An open, append-mode cache spill log.
pub struct CacheLog {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    stats: PersistStats,
}

impl CacheLog {
    /// Opens (creating if absent) the log at `path`: recovers every
    /// valid record, compacts the file down to exactly those records
    /// via an atomic temp-file rename, and leaves the log open for
    /// appending. Corrupt content is skipped, never an error; only a
    /// filesystem-level failure to (re)create the file is.
    pub fn open(path: &Path) -> std::io::Result<(CacheLog, Vec<LoadedRecord>)> {
        let mut stats = PersistStats::default();
        let records = match File::open(path) {
            Ok(f) => read_records(f, &mut stats),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        // Compact: rewrite the surviving records and atomically replace
        // the log, shedding torn tails and corrupt lines for good.
        let tmp = path.with_extension("tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            writeln!(w, "{HEADER}")?;
            for rec in &records {
                // Loaded records decoded, so they re-encode.
                if let Some(line) = encode_record(&rec.key, rec.cost, &rec.report) {
                    writeln!(w, "{line}")?;
                }
            }
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        let writer = BufWriter::new(OpenOptions::new().append(true).open(path)?);
        Ok((
            CacheLog {
                path: path.to_path_buf(),
                writer: Some(writer),
                stats,
            },
            records,
        ))
    }

    /// The log's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PersistStats {
        self.stats
    }

    /// Appends one record and flushes it to the OS, so a crash right
    /// after a reply was sent cannot lose the reply's result. All
    /// failure modes are absorbed into the counters: persistence must
    /// never fail a request.
    pub fn append(&mut self, key: &str, cost: usize, report: &Report) {
        let Some(line) = encode_record(key, cost, report) else {
            self.stats.unsupported += 1;
            return;
        };
        #[cfg(feature = "fault-injection")]
        if crate::faults::persist_io_error() {
            self.stats.append_errors += 1;
            return;
        }
        let ok = self
            .writer
            .as_mut()
            .is_some_and(|w| writeln!(w, "{line}").and_then(|()| w.flush()).is_ok());
        if ok {
            self.stats.appended += 1;
        } else {
            self.stats.append_errors += 1;
        }
    }

    /// Best-effort fsync (shutdown path).
    pub fn sync(&mut self) {
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
            let _ = w.get_ref().sync_all();
        }
    }
}

fn read_records(f: File, stats: &mut PersistStats) -> Vec<LoadedRecord> {
    let mut reader = BufReader::new(f);
    let mut records = Vec::new();
    let mut header_seen = false;
    let mut line = String::new();
    loop {
        line.clear();
        // A line that is not UTF-8 (or any other read error) ends
        // recovery: framing below the failure point is untrustworthy.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => {
                stats.skipped += 1;
                break;
            }
        }
        let line = line.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        if !header_seen {
            if line == HEADER {
                header_seen = true;
            } else {
                // Unknown version or garbage where the header should
                // be: nothing after it can be trusted.
                stats.skipped += 1;
                break;
            }
            continue;
        }
        match decode_record(line) {
            Some(rec) => records.push(rec),
            None => stats.skipped += 1,
        }
    }
    stats.loaded = records.len();
    records
}

/// `<checksum> <payload>` for one record; `None` when the report's
/// kind is not persistable.
fn encode_record(key: &str, cost: usize, report: &Report) -> Option<String> {
    let payload = Json::obj([
        ("key", Json::str(key)),
        ("cost", u64_to_json(cost as u64)),
        ("report", encode_report(report)?),
    ])
    .render();
    Some(format!("{} {payload}", fingerprint64(&payload)))
}

fn decode_record(line: &str) -> Option<LoadedRecord> {
    let (checksum, payload) = line.split_once(' ')?;
    if checksum != fingerprint64(payload) {
        return None;
    }
    let v = parse_json(payload).ok()?;
    let key = v.get("key")?.as_str()?.to_string();
    let cost = usize::try_from(u64_from_json(v.get("cost")?)?).ok()?;
    let report = decode_report(v.get("report")?)?;
    Some(LoadedRecord { key, cost, report })
}

/// A float as its exact IEEE-754 bit pattern — injective, total (NaN
/// and infinities included), and therefore fingerprint-preserving.
fn bits_json(v: f64) -> Json {
    Json::str(format!("{:016x}", v.to_bits()))
}

fn bits_from(v: &Json) -> Option<f64> {
    let s = v.as_str()?;
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn usize_from(v: &Json) -> Option<usize> {
    usize::try_from(u64_from_json(v)?).ok()
}

fn encode_report(report: &Report) -> Option<Json> {
    let (kind, value) = match &report.value {
        Value::Estimate(e) => (
            "estimate",
            Json::obj([
                ("p_hat", bits_json(e.p_hat)),
                ("samples", u64_to_json(e.samples as u64)),
                ("half_width", bits_json(e.half_width)),
                ("confidence", bits_json(e.confidence)),
            ]),
        ),
        Value::Sprt(r) => (
            "sprt",
            Json::obj([
                (
                    "outcome",
                    Json::str(match r.outcome {
                        SprtOutcome::AcceptH0 => "accept_h0",
                        SprtOutcome::AcceptH1 => "accept_h1",
                        SprtOutcome::Inconclusive => "inconclusive",
                    }),
                ),
                ("samples", u64_to_json(r.samples as u64)),
                ("p_hat", bits_json(r.p_hat)),
            ]),
        ),
        Value::Robustness(r) => (
            "robustness",
            Json::obj([
                ("p_hat", bits_json(r.p_hat)),
                ("mean", bits_json(r.mean)),
                ("min", bits_json(r.min)),
            ]),
        ),
        Value::Stability(rep) => (
            "stability",
            match rep {
                None => Json::Null,
                Some(s) => Json::obj([
                    (
                        "equilibrium",
                        Json::Arr(s.equilibrium.iter().map(|&v| bits_json(v)).collect()),
                    ),
                    ("lyapunov", Json::str(s.lyapunov.clone())),
                    ("iterations", u64_to_json(s.iterations as u64)),
                    ("certified", Json::Bool(s.certified)),
                ]),
            },
        ),
        Value::Lint(diags) => (
            "lint",
            Json::Arr(
                diags
                    .iter()
                    .map(|d| {
                        Json::obj([
                            ("code", Json::str(d.code.clone())),
                            ("severity", Json::str(d.severity.name())),
                            ("site", Json::str(d.site.clone())),
                            ("message", Json::str(d.message.clone())),
                            (
                                "expr",
                                match &d.expr {
                                    Some(e) => Json::str(e.clone()),
                                    None => Json::Null,
                                },
                            ),
                            (
                                "witness",
                                Json::Arr(
                                    d.witness
                                        .iter()
                                        .map(|(name, iv)| {
                                            // Bit-exact endpoints: ±inf
                                            // boxes and empty (NaN/NaN)
                                            // enclosures round-trip.
                                            Json::Arr(vec![
                                                Json::str(name.clone()),
                                                bits_json(iv.lo()),
                                                bits_json(iv.hi()),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        // Falsify / Therapy / Calibrate never travel the wire, so the
        // serving cache only memoizes them in-process.
        _ => return None,
    };
    Some(Json::obj([
        ("kind", Json::str(kind)),
        (
            "outcome",
            Json::str(match report.outcome {
                Outcome::Complete => "complete",
                Outcome::Exhausted => "exhausted",
            }),
        ),
        ("value", value),
        (
            "provenance",
            Json::obj([
                ("seed", u64_to_json(report.provenance.seed)),
                ("samples", u64_to_json(report.provenance.samples as u64)),
                (
                    "early_stop_rate",
                    bits_json(report.provenance.early_stop_rate),
                ),
                ("avg_steps", bits_json(report.provenance.avg_steps)),
            ]),
        ),
    ]))
}

fn decode_report(v: &Json) -> Option<Report> {
    let value = v.get("value")?;
    let (kind, value) = match v.get("kind")?.as_str()? {
        "estimate" => (
            QueryKind::Estimate,
            Value::Estimate(Estimate {
                p_hat: bits_from(value.get("p_hat")?)?,
                samples: usize_from(value.get("samples")?)?,
                half_width: bits_from(value.get("half_width")?)?,
                confidence: bits_from(value.get("confidence")?)?,
            }),
        ),
        "sprt" => (
            QueryKind::Sprt,
            Value::Sprt(SprtResult {
                outcome: match value.get("outcome")?.as_str()? {
                    "accept_h0" => SprtOutcome::AcceptH0,
                    "accept_h1" => SprtOutcome::AcceptH1,
                    "inconclusive" => SprtOutcome::Inconclusive,
                    _ => return None,
                },
                samples: usize_from(value.get("samples")?)?,
                p_hat: bits_from(value.get("p_hat")?)?,
            }),
        ),
        "robustness" => (
            QueryKind::Robustness,
            Value::Robustness(RobustnessSummary {
                p_hat: bits_from(value.get("p_hat")?)?,
                mean: bits_from(value.get("mean")?)?,
                min: bits_from(value.get("min")?)?,
            }),
        ),
        "stability" => (
            QueryKind::Stability,
            Value::Stability(match value {
                Json::Null => None,
                s => Some(biocheck_engine::StabilityReport {
                    equilibrium: s
                        .get("equilibrium")?
                        .as_arr()?
                        .iter()
                        .map(bits_from)
                        .collect::<Option<Vec<f64>>>()?,
                    lyapunov: s.get("lyapunov")?.as_str()?.to_string(),
                    iterations: usize_from(s.get("iterations")?)?,
                    certified: s.get("certified")?.as_bool()?,
                }),
            }),
        ),
        "lint" => (
            QueryKind::Lint,
            Value::Lint(
                value
                    .as_arr()?
                    .iter()
                    .map(decode_diagnostic)
                    .collect::<Option<Vec<_>>>()?,
            ),
        ),
        _ => return None,
    };
    let outcome = match v.get("outcome")?.as_str()? {
        "complete" => Outcome::Complete,
        "exhausted" => Outcome::Exhausted,
        _ => return None,
    };
    let p = v.get("provenance")?;
    Some(Report {
        kind,
        outcome,
        value,
        provenance: Provenance {
            seed: u64_from_json(p.get("seed")?)?,
            samples: usize_from(p.get("samples")?)?,
            early_stop_rate: bits_from(p.get("early_stop_rate")?)?,
            avg_steps: bits_from(p.get("avg_steps")?)?,
            // Timing provenance is observability-only and not encoded
            // (it is excluded from fingerprints, so nothing is lost).
            ..Provenance::default()
        },
    })
}

fn decode_diagnostic(v: &Json) -> Option<Diagnostic> {
    let severity = match v.get("severity")?.as_str()? {
        "error" => Severity::Error,
        "warn" => Severity::Warn,
        "info" => Severity::Info,
        _ => return None,
    };
    let expr = match v.get("expr")? {
        Json::Null => None,
        e => Some(e.as_str()?.to_string()),
    };
    let witness = v
        .get("witness")?
        .as_arr()?
        .iter()
        .map(|triple| {
            let t = triple.as_arr().filter(|t| t.len() == 3)?;
            let [name, lo, hi] = t else { return None };
            let (lo, hi) = (bits_from(lo)?, bits_from(hi)?);
            let iv = if lo.is_nan() && hi.is_nan() {
                Interval::EMPTY
            } else {
                Interval::checked(lo, hi)?
            };
            Some((name.as_str()?.to_string(), iv))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(Diagnostic {
        code: v.get("code")?.as_str()?.to_string(),
        severity,
        site: v.get("site")?.as_str()?.to_string(),
        message: v.get("message")?.as_str()?.to_string(),
        expr,
        witness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(seed: u64) -> Report {
        Report {
            kind: QueryKind::Estimate,
            outcome: Outcome::Complete,
            value: Value::Estimate(Estimate {
                p_hat: 1.0 / 3.0, // a float with no short decimal form
                samples: 120,
                half_width: f64::MIN_POSITIVE,
                confidence: 0.95,
            }),
            provenance: Provenance {
                seed,
                samples: 120,
                early_stop_rate: 0.25,
                avg_steps: 37.5,
                ..Provenance::default()
            },
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("biocheck-persist-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_fingerprints_including_nonfinite() {
        let reports = [
            sample_report(7),
            Report {
                kind: QueryKind::Robustness,
                outcome: Outcome::Exhausted,
                value: Value::Robustness(RobustnessSummary {
                    p_hat: f64::NAN,
                    mean: -0.0,
                    min: f64::NEG_INFINITY,
                }),
                provenance: Provenance::default(),
            },
            Report {
                kind: QueryKind::Sprt,
                outcome: Outcome::Complete,
                value: Value::Sprt(SprtResult {
                    outcome: SprtOutcome::Inconclusive,
                    samples: 40,
                    p_hat: 0.5,
                }),
                provenance: Provenance::default(),
            },
            Report {
                kind: QueryKind::Stability,
                outcome: Outcome::Complete,
                value: Value::Stability(Some(biocheck_engine::StabilityReport {
                    equilibrium: vec![0.1, -2.5e-300, f64::INFINITY],
                    lyapunov: "V(x) = xᵀPx".into(),
                    iterations: 12,
                    certified: true,
                })),
                provenance: Provenance::default(),
            },
        ];
        for r in &reports {
            let line = encode_record("model|q|seed=1|caps", 512, r).expect("encodable");
            let rec = decode_record(&line).expect("decodable");
            assert_eq!(rec.key, "model|q|seed=1|caps");
            assert_eq!(rec.cost, 512);
            assert_eq!(
                rec.report.fingerprint(),
                r.fingerprint(),
                "persisted report must be fingerprint-identical"
            );
        }
    }

    #[test]
    fn lint_reports_roundtrip_bit_exactly() {
        let report = Report {
            kind: QueryKind::Lint,
            outcome: Outcome::Complete,
            value: Value::Lint(vec![
                Diagnostic {
                    code: "L002".into(),
                    severity: Severity::Error,
                    site: "d(x)/dt".into(),
                    message: "`ln` argument `x - 5` is never positive".into(),
                    expr: Some("ln(x - 5)".into()),
                    witness: vec![
                        ("x - 5".into(), Interval::new(-5.0, -4.0)),
                        ("x".into(), Interval::new(0.0, f64::INFINITY)),
                        ("bad".into(), Interval::EMPTY),
                    ],
                },
                Diagnostic {
                    code: "L101".into(),
                    severity: Severity::Info,
                    site: "state `y`".into(),
                    message: "unused".into(),
                    expr: None,
                    witness: vec![],
                },
            ]),
            provenance: Provenance {
                seed: 0,
                ..Provenance::default()
            },
        };
        let line = encode_record("m|lint|seed=0|caps", 256, &report).expect("encodable");
        let rec = decode_record(&line).expect("decodable");
        assert_eq!(rec.report.fingerprint(), report.fingerprint());
        let Value::Lint(diags) = &rec.report.value else {
            panic!("wrong value kind")
        };
        // The witness boxes themselves (not just the fingerprint)
        // survive: unbounded and empty intervals included.
        assert_eq!(diags[0].witness[1].1, Interval::new(0.0, f64::INFINITY));
        assert!(diags[0].witness[2].1.is_empty());
        assert_eq!(diags[1].expr, None);
    }

    #[test]
    fn unsupported_kinds_are_refused_not_mangled() {
        let r = Report {
            kind: QueryKind::Falsify,
            outcome: Outcome::Complete,
            value: Value::Falsify(biocheck_engine::FalsificationOutcome::Undecided),
            provenance: Provenance::default(),
        };
        assert!(encode_record("k", 1, &r).is_none());
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let path = tmp_path("reopen");
        let _ = std::fs::remove_file(&path);
        let (mut log, recs) = CacheLog::open(&path).unwrap();
        assert!(recs.is_empty());
        log.append("k1", 100, &sample_report(1));
        log.append("k2", 200, &sample_report(2));
        assert_eq!(log.stats().appended, 2);
        drop(log);
        let (log, recs) = CacheLog::open(&path).unwrap();
        assert_eq!(log.stats().loaded, 2);
        assert_eq!(log.stats().skipped, 0);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].key, "k1");
        assert_eq!(recs[0].cost, 100);
        assert_eq!(recs[0].report.fingerprint(), sample_report(1).fingerprint());
        assert_eq!(recs[1].report.fingerprint(), sample_report(2).fingerprint());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_and_torn_tails_are_skipped_then_compacted_away() {
        let path = tmp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let good = encode_record("good", 64, &sample_report(9)).unwrap();
        let (checksum, payload) = good.split_once(' ').unwrap();
        let mut content = format!("{HEADER}\n{good}\n");
        content.push_str("0000000000000000 {\"not\":\"matching\"}\n"); // bad checksum
        content.push_str(&format!("{checksum} {}\n", &payload[..payload.len() / 2])); // truncated JSON
        content.push_str("complete garbage, not even a record\n");
        let good2 = encode_record("good2", 65, &sample_report(10)).unwrap();
        content.push_str(&format!("{good2}\n"));
        content.push_str(&good[..good.len() / 2]); // torn tail, no newline
        std::fs::write(&path, content).unwrap();
        let (log, recs) = CacheLog::open(&path).unwrap();
        assert_eq!(log.stats().loaded, 2, "both intact records recovered");
        assert_eq!(log.stats().skipped, 4, "four corrupt lines skipped");
        assert_eq!(recs[0].key, "good");
        assert_eq!(recs[1].key, "good2");
        drop(log);
        // Compaction rewrote the file: a second open sees a clean log.
        let (log, recs) = CacheLog::open(&path).unwrap();
        assert_eq!(log.stats().loaded, 2);
        assert_eq!(
            log.stats().skipped,
            0,
            "corruption must not survive compaction"
        );
        assert_eq!(recs.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_header_invalidates_the_file_without_crashing() {
        let path = tmp_path("header");
        let _ = std::fs::remove_file(&path);
        let good = encode_record("k", 1, &sample_report(3)).unwrap();
        std::fs::write(&path, format!("biocheck-cache v999\n{good}\n")).unwrap();
        let (log, recs) = CacheLog::open(&path).unwrap();
        assert_eq!(
            recs.len(),
            0,
            "records behind an unknown header are not trusted"
        );
        assert!(log.stats().skipped >= 1);
        let _ = std::fs::remove_file(&path);
    }
}
