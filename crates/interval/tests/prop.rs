//! Property-based soundness tests: every interval operation must enclose
//! the corresponding exact pointwise operation.

use biocheck_interval::{IBox, Interval};
use proptest::prelude::*;

/// A strategy for modest finite floats where libm is well-behaved.
fn small_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e6..1e6f64,
        -10.0..10.0f64,
        Just(0.0),
        Just(1.0),
        Just(-1.0),
    ]
}

/// An interval with ordered random endpoints plus a point inside it.
/// Returns (interval, inner point).
fn interval_with_point() -> impl Strategy<Value = (Interval, f64)> {
    (small_f64(), small_f64(), 0.0..1.0f64).prop_map(|(a, b, t)| {
        let lo = a.min(b);
        let hi = a.max(b);
        let p = lo + t * (hi - lo);
        (Interval::new(lo, hi), p.clamp(lo, hi))
    })
}

proptest! {
    #[test]
    fn add_encloses((x, px) in interval_with_point(), (y, py) in interval_with_point()) {
        prop_assert!((x + y).contains(px + py));
    }

    #[test]
    fn sub_encloses((x, px) in interval_with_point(), (y, py) in interval_with_point()) {
        prop_assert!((x - y).contains(px - py));
    }

    #[test]
    fn mul_encloses((x, px) in interval_with_point(), (y, py) in interval_with_point()) {
        prop_assert!((x * y).contains(px * py));
    }

    #[test]
    fn div_encloses((x, px) in interval_with_point(), (y, py) in interval_with_point()) {
        if py != 0.0 && !(y.lo() == 0.0 && y.hi() == 0.0) {
            let q = x / y;
            let exact = px / py;
            if exact.is_finite() {
                prop_assert!(q.contains(exact), "{x:?}/{y:?}={q:?} missing {exact}");
            }
        }
    }

    #[test]
    fn sqr_encloses((x, px) in interval_with_point()) {
        prop_assert!(x.sqr().contains(px * px));
    }

    #[test]
    fn sqr_subset_of_mul((x, _) in interval_with_point()) {
        prop_assert!((x * x).contains_interval(&x.sqr()));
    }

    #[test]
    fn powi_encloses((x, px) in interval_with_point(), n in 0i32..6) {
        let v = px.powi(n);
        if v.is_finite() {
            prop_assert!(x.powi(n).contains(v));
        }
    }

    #[test]
    fn abs_encloses((x, px) in interval_with_point()) {
        prop_assert!(x.abs().contains(px.abs()));
    }

    #[test]
    fn min_max_enclose((x, px) in interval_with_point(), (y, py) in interval_with_point()) {
        prop_assert!(x.min_i(&y).contains(px.min(py)));
        prop_assert!(x.max_i(&y).contains(px.max(py)));
    }

    #[test]
    fn exp_encloses(p in -30.0..30.0f64, w in 0.0..5.0f64) {
        let x = Interval::new(p, p + w);
        for t in [0.0, 0.3, 0.7, 1.0] {
            let v = p + t * w;
            prop_assert!(x.exp().contains(v.exp()));
        }
    }

    #[test]
    fn ln_encloses(p in 1e-6..1e6f64, w in 0.0..10.0f64) {
        let x = Interval::new(p, p + w);
        for t in [0.0, 0.5, 1.0] {
            let v = p + t * w;
            prop_assert!(x.ln().contains(v.ln()));
        }
    }

    #[test]
    fn sqrt_encloses(p in 0.0..1e9f64, w in 0.0..100.0f64) {
        let x = Interval::new(p, p + w);
        for t in [0.0, 0.5, 1.0] {
            let v = p + t * w;
            prop_assert!(x.sqrt().contains(v.sqrt()));
        }
    }

    #[test]
    fn trig_encloses(p in -50.0..50.0f64, w in 0.0..10.0f64) {
        let x = Interval::new(p, p + w);
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = p + t * w;
            prop_assert!(x.sin().contains(v.sin()), "sin {x:?} missing sin({v})");
            prop_assert!(x.cos().contains(v.cos()), "cos {x:?} missing cos({v})");
            prop_assert!(x.tan().contains(v.tan()) || !v.tan().is_finite());
            prop_assert!(x.atan().contains(v.atan()));
            prop_assert!(x.tanh().contains(v.tanh()));
        }
    }

    #[test]
    fn hyperbolic_encloses(p in -20.0..20.0f64, w in 0.0..4.0f64) {
        let x = Interval::new(p, p + w);
        for t in [0.0, 0.5, 1.0] {
            let v = p + t * w;
            prop_assert!(x.sinh().contains(v.sinh()));
            prop_assert!(x.cosh().contains(v.cosh()));
        }
    }

    #[test]
    fn intersect_hull_laws((x, px) in interval_with_point(), (y, _) in interval_with_point()) {
        let h = x.hull(&y);
        prop_assert!(h.contains_interval(&x) && h.contains_interval(&y));
        let i = x.intersect(&y);
        prop_assert!(x.contains_interval(&i) && y.contains_interval(&i));
        if y.contains(px) {
            prop_assert!(i.contains(px));
        }
    }

    #[test]
    fn bisect_covers((x, px) in interval_with_point()) {
        let (l, r) = x.bisect();
        prop_assert!(l.contains(px) || r.contains(px));
        prop_assert!(x.contains_interval(&l) && x.contains_interval(&r));
    }

    #[test]
    fn box_bisect_covers(
        (x, px) in interval_with_point(),
        (y, py) in interval_with_point()
    ) {
        let b = IBox::new(vec![x, y]);
        let (l, r) = b.bisect();
        prop_assert!(l.contains_point(&[px, py]) || r.contains_point(&[px, py]));
    }

    #[test]
    fn mid_is_inside((x, _) in interval_with_point()) {
        prop_assert!(x.contains(x.mid()));
    }

    #[test]
    fn recip_encloses((x, px) in interval_with_point()) {
        if px != 0.0 && !(x.lo() == 0.0 && x.hi() == 0.0) {
            let r = x.recip();
            let exact = 1.0 / px;
            if exact.is_finite() {
                prop_assert!(r.contains(exact));
            }
        }
    }

    #[test]
    fn div_extended_covers((x, px) in interval_with_point(), (y, py) in interval_with_point()) {
        if py != 0.0 {
            let exact = px / py;
            if exact.is_finite() {
                let (a, b) = x.div_extended(&y);
                let hit = a.is_some_and(|i| i.contains(exact))
                    || b.is_some_and(|i| i.contains(exact));
                prop_assert!(hit, "extended division lost {exact}");
            }
        }
    }
}
