//! Atomic formulas `t ⋈ 0` of the LRF language and their δ-weakening.

use crate::context::{Context, NodeId};
use biocheck_interval::Interval;

/// Relation of an atomic formula against zero.
///
/// The paper's core language has only `t > 0` and `t ≥ 0` (Definition 1);
/// `<`, `≤` are normalized by negating the term and `=` abbreviates the
/// conjunction `t ≥ 0 ∧ -t ≥ 0`. We keep all five for convenience.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RelOp {
    /// `t > 0`
    Gt,
    /// `t ≥ 0`
    Ge,
    /// `t = 0`
    Eq,
    /// `t ≤ 0`
    Le,
    /// `t < 0`
    Lt,
}

impl RelOp {
    /// The symbol used in diagnostics.
    pub fn symbol(self) -> &'static str {
        match self {
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
            RelOp::Eq => "=",
            RelOp::Le => "<=",
            RelOp::Lt => "<",
        }
    }
}

/// An atomic constraint `expr ⋈ 0` over a shared [`Context`].
///
/// # Examples
///
/// ```
/// use biocheck_expr::{Atom, Context, RelOp};
///
/// let mut cx = Context::new();
/// let lhs = cx.parse("x^2 + y^2").unwrap();
/// let rhs = cx.parse("1").unwrap();
/// // x² + y² ≤ 1
/// let inside = Atom::le(&mut cx, lhs, rhs);
/// assert_eq!(inside.op, RelOp::Le);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The left-hand term (compared against zero).
    pub expr: NodeId,
    /// The relation.
    pub op: RelOp,
}

impl Atom {
    /// Creates `expr ⋈ 0` directly.
    pub fn new(expr: NodeId, op: RelOp) -> Atom {
        Atom { expr, op }
    }

    /// Builds `lhs > rhs` as `lhs - rhs > 0`.
    pub fn gt(cx: &mut Context, lhs: NodeId, rhs: NodeId) -> Atom {
        Atom::new(cx.sub(lhs, rhs), RelOp::Gt)
    }

    /// Builds `lhs ≥ rhs`.
    pub fn ge(cx: &mut Context, lhs: NodeId, rhs: NodeId) -> Atom {
        Atom::new(cx.sub(lhs, rhs), RelOp::Ge)
    }

    /// Builds `lhs = rhs`.
    pub fn eq(cx: &mut Context, lhs: NodeId, rhs: NodeId) -> Atom {
        Atom::new(cx.sub(lhs, rhs), RelOp::Eq)
    }

    /// Builds `lhs ≤ rhs`.
    pub fn le(cx: &mut Context, lhs: NodeId, rhs: NodeId) -> Atom {
        Atom::new(cx.sub(lhs, rhs), RelOp::Le)
    }

    /// Builds `lhs < rhs`.
    pub fn lt(cx: &mut Context, lhs: NodeId, rhs: NodeId) -> Atom {
        Atom::new(cx.sub(lhs, rhs), RelOp::Lt)
    }

    /// The logical negation, following the paper's inductive definition
    /// (`¬(t > 0) := -t ≥ 0`, `¬(t ≥ 0) := -t > 0`).
    ///
    /// Returns `None` for equalities, whose negation (`t ≠ 0`) is a
    /// disjunction and therefore not an atom.
    pub fn negate(&self, cx: &mut Context) -> Option<Atom> {
        let op = match self.op {
            RelOp::Gt => RelOp::Le,
            RelOp::Ge => RelOp::Lt,
            RelOp::Le => RelOp::Gt,
            RelOp::Lt => RelOp::Ge,
            RelOp::Eq => return None,
        };
        let _ = cx; // expr unchanged: we flip the relation instead of negating the term
        Some(Atom {
            expr: self.expr,
            op,
        })
    }

    /// The set of admissible term values under the δ-weakening of this
    /// atom (Definition 4). With `δ = 0` this is the exact admissible set
    /// (up to topological closure of strict relations, which is the sound
    /// direction for pruning).
    pub fn projection(&self, delta: f64) -> Interval {
        debug_assert!(delta >= 0.0);
        match self.op {
            RelOp::Gt | RelOp::Ge => Interval::new(-delta, f64::INFINITY),
            RelOp::Eq => Interval::new(-delta, delta),
            RelOp::Le | RelOp::Lt => Interval::new(f64::NEG_INFINITY, delta),
        }
    }

    /// Does the point value `v` of the term satisfy the δ-weakened atom?
    pub fn holds_at(&self, v: f64, delta: f64) -> bool {
        match self.op {
            RelOp::Gt => v > -delta,
            RelOp::Ge => v >= -delta,
            RelOp::Eq => v.abs() <= delta,
            RelOp::Le => v <= delta,
            RelOp::Lt => v < delta,
        }
    }

    /// Does an enclosure `iv` of the term *refute* the original atom
    /// (no point of `iv` satisfies it)?
    pub fn refuted_by(&self, iv: Interval) -> bool {
        if iv.is_empty() {
            return true;
        }
        match self.op {
            RelOp::Gt => iv.hi() <= 0.0,
            RelOp::Ge => iv.hi() < 0.0,
            RelOp::Eq => !iv.contains(0.0),
            RelOp::Le => iv.lo() > 0.0,
            RelOp::Lt => iv.lo() >= 0.0,
        }
    }

    /// Does every point of the enclosure `iv` satisfy the δ-weakened atom?
    pub fn delta_holds_on(&self, iv: Interval, delta: f64) -> bool {
        if iv.is_empty() {
            return false;
        }
        match self.op {
            RelOp::Gt => iv.lo() > -delta,
            RelOp::Ge => iv.lo() >= -delta,
            RelOp::Eq => -delta <= iv.lo() && iv.hi() <= delta,
            RelOp::Le => iv.hi() <= delta,
            RelOp::Lt => iv.hi() < delta,
        }
    }

    /// Renders the atom as `term ⋈ 0`.
    pub fn display(&self, cx: &Context) -> String {
        format!("{} {} 0", cx.display(self.expr), self.op.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Context, Atom) {
        let mut cx = Context::new();
        let lhs = cx.parse("x - 1").unwrap();
        let zero = cx.constant(0.0);
        let a = Atom::ge(&mut cx, lhs, zero); // x - 1 ≥ 0
        (cx, a)
    }

    #[test]
    fn builders_normalize_to_zero_comparison() {
        let mut cx = Context::new();
        let x = cx.var("x");
        let one = cx.constant(1.0);
        let a = Atom::le(&mut cx, x, one); // x ≤ 1 ⇒ x - 1 ≤ 0
        assert_eq!(a.op, RelOp::Le);
        assert_eq!(cx.eval(a.expr, &[3.0]), 2.0);
    }

    #[test]
    fn holds_at_delta_weakening() {
        let (_cx, a) = setup();
        assert!(a.holds_at(0.5, 0.0)); // x-1 = 0.5 ≥ 0
        assert!(!a.holds_at(-0.5, 0.0));
        assert!(a.holds_at(-0.5, 0.5)); // weakened to ≥ -0.5
        let eq = Atom::new(a.expr, RelOp::Eq);
        assert!(eq.holds_at(0.0, 0.0));
        assert!(eq.holds_at(0.3, 0.5));
        assert!(!eq.holds_at(0.6, 0.5));
    }

    #[test]
    fn refutation_by_interval() {
        let (_cx, a) = setup();
        assert!(a.refuted_by(Interval::new(-2.0, -0.1))); // term < 0 everywhere
        assert!(!a.refuted_by(Interval::new(-1.0, 1.0)));
        let strict = Atom::new(a.expr, RelOp::Gt);
        assert!(strict.refuted_by(Interval::new(-1.0, 0.0))); // t > 0 impossible
        let eq = Atom::new(a.expr, RelOp::Eq);
        assert!(eq.refuted_by(Interval::new(0.5, 1.0)));
        assert!(!eq.refuted_by(Interval::new(-0.5, 0.5)));
        assert!(eq.refuted_by(Interval::EMPTY));
    }

    #[test]
    fn delta_holds_on_whole_interval() {
        let (_cx, a) = setup();
        assert!(a.delta_holds_on(Interval::new(0.0, 5.0), 0.0));
        assert!(!a.delta_holds_on(Interval::new(-0.1, 5.0), 0.0));
        assert!(a.delta_holds_on(Interval::new(-0.1, 5.0), 0.2));
        assert!(!a.delta_holds_on(Interval::EMPTY, 1.0));
    }

    #[test]
    fn projection_sets() {
        let (_cx, a) = setup();
        let p = a.projection(0.1);
        assert_eq!(p.lo(), -0.1);
        assert_eq!(p.hi(), f64::INFINITY);
        let eq = Atom::new(a.expr, RelOp::Eq).projection(0.25);
        assert_eq!(eq, Interval::new(-0.25, 0.25));
        let lt = Atom::new(a.expr, RelOp::Lt).projection(0.0);
        assert_eq!(lt.hi(), 0.0);
    }

    #[test]
    fn negation_flips_relation() {
        let mut cx = Context::new();
        let x = cx.var("x");
        for (op, want) in [
            (RelOp::Gt, RelOp::Le),
            (RelOp::Ge, RelOp::Lt),
            (RelOp::Le, RelOp::Gt),
            (RelOp::Lt, RelOp::Ge),
        ] {
            let a = Atom::new(x, op);
            let n = a.negate(&mut cx).unwrap();
            assert_eq!(n.op, want);
            assert_eq!(n.expr, x);
            // A point satisfies exactly one of atom/negation (δ = 0, v ≠ 0).
            for v in [-1.0, 2.0] {
                assert_ne!(a.holds_at(v, 0.0), n.holds_at(v, 0.0));
            }
        }
        assert!(Atom::new(x, RelOp::Eq).negate(&mut cx).is_none());
    }

    #[test]
    fn display_contains_symbol() {
        let (cx, a) = setup();
        let s = a.display(&cx);
        assert!(s.contains(">="), "{s}");
        assert!(s.contains('x'));
    }
}
