//! The δ-complete SMT solver: a lazy DPLL(T) loop over the CDCL SAT core
//! (`biocheck-sat`) and the ICP theory solver (`biocheck-icp`) — BioCheck's
//! reimplementation of dReal (Section III of the paper, Theorem 1).
//!
//! First-order structure is expressed with [`Fol`] formulas over
//! [`biocheck_expr::Atom`]s; bounded quantification is implicit in the
//! variable bounds attached to the solver (Definition 3: bounded
//! LRF-sentences). The solving loop:
//!
//! 1. abstract the Boolean skeleton (Tseitin encoding),
//! 2. enumerate Boolean models with CDCL,
//! 3. check each model's conjunction of theory literals with
//!    branch-and-prune ICP (plus any *guarded contractors* — validated ODE
//!    flows switched on by their Boolean flag),
//! 4. on theory conflict, learn the blocking clause and continue;
//!    on theory δ-sat, return the witness.
//!
//! Guarantees are one-sided exactly as in the paper: `unsat` is exact,
//! `δ-sat` holds for the δ-weakened formula.
//!
//! # Examples
//!
//! ```
//! use biocheck_dsmt::{DeltaSmt, Fol};
//! use biocheck_expr::{Atom, Context, RelOp};
//! use biocheck_interval::Interval;
//!
//! let mut cx = Context::new();
//! let e1 = cx.parse("x^2 - 4").unwrap();
//! let e2 = cx.parse("x - 10").unwrap();
//! let mut smt = DeltaSmt::new(cx, 1e-3);
//! smt.bound("x", Interval::new(-5.0, 5.0));
//! // (x² = 4) ∧ ¬(x ≥ 10)
//! smt.assert(Fol::and(vec![
//!     Fol::Atom(Atom::new(e1, RelOp::Eq)),
//!     Fol::not(Fol::Atom(Atom::new(e2, RelOp::Ge))),
//! ]));
//! let result = smt.check();
//! assert!(result.is_delta_sat());
//! let x = result.witness().unwrap().point[0];
//! assert!((x.abs() - 2.0).abs() < 0.05);
//! ```

mod fol;
mod solver;

pub use fol::Fol;
pub use icp_reexport::*;
pub use solver::{DeltaSmt, FlagId};

mod icp_reexport {
    pub use biocheck_icp::{DeltaResult, Witness};
}
