//! A batched multi-query workload through one [`Session`]: seven
//! analyses of the prostate CAS model — estimates at several PSA
//! thresholds, an SPRT, a robustness summary, and a stability check —
//! submitted as one `run_batch` call.
//!
//! Everything compiles once: the model RHS at session construction,
//! each distinct property once on first use. The batch runs the queries
//! concurrently over the work-stealing pool with per-query forked
//! seeds, so the reports are bit-for-bit identical to running each
//! query alone (try `BIOCHECK_THREADS=1` — same numbers).
//!
//! Run with `cargo run --release --example engine_batch`.

use biocheck::bltl::Bltl;
use biocheck::engine::{EstimateMethod, Query, Session, SmcSpec, Value};
use biocheck::expr::{Atom, RelOp};
use biocheck::interval::Interval;
use biocheck::models::prostate;
use biocheck::smc::Dist;
use std::time::Instant;

fn main() {
    let patient = prostate::PatientParams::default();
    let mut model = prostate::cas_model(&patient);
    // Parse every monitored threshold before the session clones the
    // context.
    let thresholds: Vec<(f64, _)> = [16.0, 18.0, 20.0, 22.0]
        .into_iter()
        .map(|t| (t, model.cx.parse(&format!("{t} - (x + y)")).unwrap()))
        .collect();
    let session = Session::new(&model);

    let spec_for = |node| SmcSpec {
        init: vec![
            Dist::Uniform(10.0, 20.0), // AD tumor burden
            Dist::Uniform(0.05, 0.2),  // AI tumor burden
            Dist::Uniform(10.0, 14.0), // androgen
        ],
        params: vec![],
        property: Bltl::globally(100.0, Bltl::Prop(Atom::new(node, RelOp::Ge))),
        t_end: 100.0,
    };

    // The workload: a PSA-threshold sweep + hypothesis test +
    // robustness + stability, as one batch.
    let mut queries: Vec<Query> = thresholds
        .iter()
        .map(|&(_, node)| Query::Estimate {
            smc: spec_for(node),
            method: EstimateMethod::Fixed { n: 400 },
        })
        .collect();
    queries.push(Query::Sprt {
        smc: spec_for(thresholds[1].1),
        theta: 0.5,
        indiff: 0.05,
        alpha: 0.01,
        beta: 0.01,
        max_samples: 50_000,
    });
    queries.push(Query::Robustness {
        smc: spec_for(thresholds[1].1),
        samples: 200,
    });
    queries.push(Query::Stability {
        region: vec![
            Interval::new(0.0, 30.0),
            Interval::new(0.0, 1.0),
            Interval::new(10.0, 13.0),
        ],
        r_min: 0.05,
        r_max: 0.5,
    });

    let t0 = Instant::now();
    let reports = session.run_batch(&queries, 2020);
    let elapsed = t0.elapsed();

    for (q, r) in queries.iter().zip(&reports) {
        let r = r.as_ref().expect("well-formed queries");
        match (&r.value, q) {
            (Value::Estimate(e), Query::Estimate { .. }) => println!(
                "P(G≤100 PSA ok)  p̂ = {:.3}  ({} samples, {:.0}% early-stop)",
                e.p_hat,
                e.samples,
                100.0 * r.provenance.early_stop_rate
            ),
            (Value::Sprt(s), _) => println!(
                "SPRT p ≥ 0.5     {:?} after {} samples (p̂ = {:.3})",
                s.outcome, s.samples, s.p_hat
            ),
            (Value::Robustness(rb), _) => println!(
                "robustness       mean = {:.3}, min = {:.3}, p̂ = {:.3}",
                rb.mean, rb.min, rb.p_hat
            ),
            (Value::Stability(s), _) => println!(
                "stability        {}",
                s.as_ref()
                    .map(|rep| format!(
                        "equilibrium {:?}, certified = {}",
                        rep.equilibrium, rep.certified
                    ))
                    .unwrap_or_else(|| "no certificate in region".into())
            ),
            (v, _) => println!("{v:?}"),
        }
    }
    let stats = session.stats();
    println!(
        "\n{} queries in {elapsed:?} — compiled {} RHS + {} plans, {} sampler builds, {} cache hits",
        queries.len(),
        stats.rhs_compiles,
        stats.plan_compiles,
        stats.sampler_builds,
        stats.cache_hits
    );

    // Determinism spot-check: the batch equals per-query sequential runs.
    let lone = session
        .query(queries[0].clone())
        .seed(biocheck::smc::fork_seed(2020, 0))
        .run()
        .unwrap();
    assert_eq!(
        lone.fingerprint(),
        reports[0].as_ref().unwrap().fingerprint(),
        "batched == sequential, bit for bit"
    );
    println!("determinism: batched report == standalone report ✓");
    let _ = &mut model;
}
