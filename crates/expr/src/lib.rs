//! Hash-consed expression DAGs over computable real functions — the term
//! language `t := x | f(t(~x))` of the paper's LRF-formulas (Definition 1).
//!
//! All expressions live inside a [`Context`] arena. Building an expression
//! twice yields the same [`NodeId`] (hash-consing), children always have
//! smaller ids than parents (topological order), and light algebraic
//! simplification is applied at construction time. On top of the term
//! language, [`Atom`] represents the atomic formulas `t > 0` / `t ≥ 0`
//! (plus the derived `=`, `≤`, `<` forms) together with their δ-weakening
//! (Definition 4 of the paper).
//!
//! Provided operations:
//!
//! * evaluation over `f64` points and over interval boxes ([`Context::eval`],
//!   [`Context::eval_interval`]) — the two structures `R_F` is interpreted in,
//! * symbolic differentiation ([`Context::diff`]) for Jacobians and Lie
//!   derivatives,
//! * capture-free substitution ([`Context::subst`]) used by the BMC
//!   unroller to index variables by step,
//! * a text parser ([`Context::parse`]) and precedence-aware printer.
//!
//! # Examples
//!
//! ```
//! use biocheck_expr::Context;
//!
//! let mut cx = Context::new();
//! let e = cx.parse("x^2 + sin(y)").unwrap();
//! let x = cx.var_id("x").unwrap();
//! let dx = cx.diff(e, x);
//! // d/dx (x^2 + sin y) = 2x
//! let v = cx.eval(dx, &[3.0, 0.0]);
//! assert_eq!(v, 6.0);
//! ```

mod atom;
mod context;
mod diff;
mod display;
mod eval;
mod parser;
mod subst;

pub use atom::{Atom, RelOp};
pub use context::eval_unary_f64;
pub use context::{BinOp, Context, Node, NodeId, UnaryOp, VarId};
pub use eval::{
    eval_binary_f64, eval_binary_interval, eval_unary_interval, AuxBuffers, EvalScratch, Program,
};
pub use parser::ParseError;
