//! A Krawczyk-style interval Newton contractor for square systems of
//! equalities, plus the small dense linear algebra it needs.

use crate::contract::{Contractor, Outcome};
use biocheck_expr::{Context, EvalScratch, NodeId, Program, VarId};
use biocheck_interval::{IBox, Interval};

/// Interval Newton (Krawczyk operator) for `f(x) = 0`, `f : ℝⁿ → ℝⁿ`.
///
/// Given a box `X` with midpoint `m`, the Krawczyk operator is
///
/// ```text
/// K(X) = m − Y·f(m) + (I − Y·J(X))·(X − m)
/// ```
///
/// where `J` is the interval Jacobian and `Y ≈ J(m)⁻¹`. Every zero of `f`
/// in `X` lies in `K(X) ∩ X`, so intersecting is a sound contraction; an
/// empty intersection proves there is no zero.
///
/// The quadratic convergence near simple roots makes this dramatically
/// faster than HC4+bisection on equality systems — it is benchmarked as an
/// ablation in experiment E8.
#[derive(Clone, Debug)]
pub struct Newton {
    f: Program,
    jac: Program,
    vars: Vec<VarId>,
    n: usize,
}

impl Newton {
    /// Builds the contractor for the system `eqs = 0` over `vars`.
    ///
    /// # Panics
    ///
    /// Panics unless `eqs.len() == vars.len()` (the system must be square)
    /// or if an equation is not differentiable.
    pub fn new(cx: &mut Context, eqs: &[NodeId], vars: &[VarId]) -> Newton {
        assert_eq!(
            eqs.len(),
            vars.len(),
            "interval Newton needs a square system"
        );
        let n = eqs.len();
        let mut jac_entries = Vec::with_capacity(n * n);
        for &e in eqs {
            for &v in vars {
                jac_entries.push(cx.diff(e, v));
            }
        }
        Newton {
            f: Program::compile(cx, eqs),
            jac: Program::compile(cx, &jac_entries),
            vars: vars.to_vec(),
            n,
        }
    }
}

impl Contractor for Newton {
    fn contract(&self, bx: &mut IBox) -> Outcome {
        self.contract_with(bx, &mut EvalScratch::new())
    }

    /// Allocation-free after warm-up: every buffer (midpoints, interval
    /// Jacobian, inverse, Krawczyk image, midpoint environment) lives in
    /// the scratch's leased [`biocheck_expr::AuxBuffers`] bundle.
    fn contract_with(&self, bx: &mut IBox, scratch: &mut EvalScratch) -> Outcome {
        let mut aux = scratch.take_aux();
        let outcome = self.contract_impl(bx, scratch, &mut aux);
        scratch.restore_aux(aux);
        outcome
    }

    fn name(&self) -> &str {
        "interval-newton"
    }
}

impl Newton {
    fn contract_impl(
        &self,
        bx: &mut IBox,
        scratch: &mut EvalScratch,
        aux: &mut biocheck_expr::AuxBuffers,
    ) -> Outcome {
        let n = self.n;
        // X restricted to our variables; skip degenerate/unbounded boxes.
        aux.intervals_a.clear();
        aux.intervals_a
            .extend(self.vars.iter().map(|v| bx[v.index()]));
        let x = &aux.intervals_a[..n];
        if x.iter().any(|iv| !iv.is_bounded()) {
            return Outcome::Unchanged;
        }
        aux.f64_c.clear();
        aux.f64_c.extend(x.iter().map(Interval::mid));
        let m = &aux.f64_c[..n];

        // f(m), evaluated in interval arithmetic at the point m for soundness.
        if aux.env.len() == bx.len() {
            aux.env.dims_mut().copy_from_slice(bx.dims());
        } else {
            aux.env = bx.clone();
        }
        for (&v, &mi) in self.vars.iter().zip(m) {
            aux.env[v.index()] = Interval::point(mi);
        }
        aux.intervals_b.resize(n, Interval::ZERO);
        self.f
            .eval_interval_with(&aux.env, scratch, &mut aux.intervals_b[..n]);
        let fm = &aux.intervals_b[..n];

        // Interval Jacobian over X.
        aux.intervals_c.resize(n * n, Interval::ZERO);
        self.jac
            .eval_interval_with(bx, scratch, &mut aux.intervals_c[..n * n]);
        let jx = &aux.intervals_c[..n * n];
        if jx.iter().any(Interval::is_empty) || fm.iter().any(Interval::is_empty) {
            return Outcome::Unchanged; // domain violation: let HC4 handle it
        }

        // Y = midpoint-Jacobian inverse (plain f64), computed in place.
        aux.f64_a.clear();
        aux.f64_a.extend(jx.iter().map(Interval::mid));
        aux.f64_b.resize(n * n, 0.0);
        if !invert_into(&mut aux.f64_a[..n * n], &mut aux.f64_b[..n * n], n) {
            return Outcome::Unchanged; // singular: no Newton step
        }
        let y = &aux.f64_b[..n * n];

        // K = m - Y·f(m) + (I - Y·J(X))·(X - m)
        aux.intervals_d.resize(n, Interval::ZERO);
        let k = &mut aux.intervals_d[..n];
        for i in 0..n {
            // (Y·f(m))_i
            let mut yf = Interval::ZERO;
            for j in 0..n {
                yf += Interval::point(y[i * n + j]) * fm[j];
            }
            // Σ_j (I - Y·J)_ij (X_j - m_j)
            let mut corr = Interval::ZERO;
            for j in 0..n {
                let mut yj = Interval::ZERO;
                for l in 0..n {
                    yj += Interval::point(y[i * n + l]) * jx[l * n + j];
                }
                let iyj = if i == j { Interval::ONE - yj } else { -yj };
                corr += iyj * (x[j] - Interval::point(m[j]));
            }
            k[i] = Interval::point(m[i]) - yf + corr;
        }

        // Intersect.
        let mut changed = false;
        for (idx, &v) in self.vars.iter().enumerate() {
            let narrowed = bx[v.index()].intersect(&k[idx]);
            if narrowed.is_empty() {
                return Outcome::Empty;
            }
            if narrowed != bx[v.index()] {
                bx[v.index()] = narrowed;
                changed = true;
            }
        }
        if changed {
            Outcome::Reduced
        } else {
            Outcome::Unchanged
        }
    }
}

/// Inverts a dense row-major `n×n` matrix by Gauss–Jordan with partial
/// pivoting, in place: `m` is destroyed, the inverse lands in `inv`.
/// Returns `false` when (numerically) singular.
///
/// # Panics
///
/// Panics unless `m.len() == inv.len() == n * n`.
fn invert_into(m: &mut [f64], inv: &mut [f64], n: usize) -> bool {
    assert_eq!(m.len(), n * n);
    assert_eq!(inv.len(), n * n);
    inv.fill(0.0);
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        let mut best = m[col * n + col].abs();
        for r in (col + 1)..n {
            let v = m[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-12 || !best.is_finite() {
            return false;
        }
        if piv != col {
            for c in 0..n {
                m.swap(col * n + c, piv * n + c);
                inv.swap(col * n + c, piv * n + c);
            }
        }
        let d = m[col * n + col];
        for c in 0..n {
            m[col * n + c] /= d;
            inv[col * n + c] /= d;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = m[r * n + col];
            if factor == 0.0 {
                continue;
            }
            for c in 0..n {
                m[r * n + c] -= factor * m[col * n + c];
                inv[r * n + c] -= factor * inv[col * n + c];
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invert(a: &[f64], n: usize) -> Option<Vec<f64>> {
        let mut m = a.to_vec();
        let mut inv = vec![0.0; n * n];
        invert_into(&mut m, &mut inv, n).then_some(inv)
    }

    #[test]
    fn invert_identity_and_known() {
        let i2 = invert(&[1.0, 0.0, 0.0, 1.0], 2).unwrap();
        assert_eq!(i2, vec![1.0, 0.0, 0.0, 1.0]);
        // [[2,1],[1,1]]⁻¹ = [[1,-1],[-1,2]]
        let inv = invert(&[2.0, 1.0, 1.0, 1.0], 2).unwrap();
        for (got, want) in inv.iter().zip([1.0, -1.0, -1.0, 2.0]) {
            assert!((got - want).abs() < 1e-12);
        }
        assert!(invert(&[1.0, 2.0, 2.0, 4.0], 2).is_none()); // singular
    }

    #[test]
    fn newton_contracts_to_root_quadratically() {
        // x² - 2 = 0 on [1, 2] → √2.
        let mut cx = Context::new();
        let e = cx.parse("x^2 - 2").unwrap();
        let x = cx.var_id("x").unwrap();
        let newton = Newton::new(&mut cx, &[e], &[x]);
        let mut bx = IBox::new(vec![Interval::new(1.0, 2.0)]);
        for _ in 0..6 {
            newton.contract(&mut bx);
        }
        assert!(bx[0].contains(2.0f64.sqrt()));
        assert!(bx[0].width() < 1e-10, "quadratic convergence expected");
    }

    #[test]
    fn newton_proves_absence_of_roots() {
        // x² + 1 = 0 has no real root.
        let mut cx = Context::new();
        let e = cx.parse("x^2 + 1").unwrap();
        let x = cx.var_id("x").unwrap();
        let newton = Newton::new(&mut cx, &[e], &[x]);
        let mut bx = IBox::new(vec![Interval::new(0.5, 2.0)]);
        let mut out = Outcome::Unchanged;
        for _ in 0..10 {
            out = newton.contract(&mut bx);
            if out == Outcome::Empty {
                break;
            }
        }
        assert_eq!(out, Outcome::Empty);
    }

    #[test]
    fn newton_2d_system() {
        // x² + y² = 1, x = y → (±1/√2, ±1/√2); restrict to positive quadrant.
        let mut cx = Context::new();
        let f1 = cx.parse("x^2 + y^2 - 1").unwrap();
        let f2 = cx.parse("x - y").unwrap();
        let x = cx.var_id("x").unwrap();
        let y = cx.var_id("y").unwrap();
        let newton = Newton::new(&mut cx, &[f1, f2], &[x, y]);
        let mut bx = IBox::new(vec![Interval::new(0.5, 1.0), Interval::new(0.5, 1.0)]);
        for _ in 0..8 {
            newton.contract(&mut bx);
        }
        let c = 1.0 / 2.0f64.sqrt();
        assert!(bx[0].contains(c) && bx[1].contains(c));
        assert!(bx[0].width() < 1e-8 && bx[1].width() < 1e-8);
    }

    #[test]
    fn newton_keeps_root_always() {
        // Soundness: the true root never leaves the box.
        let mut cx = Context::new();
        let e = cx.parse("cos(x) - x").unwrap(); // Dottie number ≈ 0.739
        let x = cx.var_id("x").unwrap();
        let newton = Newton::new(&mut cx, &[e], &[x]);
        let mut bx = IBox::new(vec![Interval::new(0.0, 1.5)]);
        let root = 0.7390851332151607;
        for _ in 0..10 {
            if newton.contract(&mut bx) == Outcome::Empty {
                panic!("lost the Dottie fixed point");
            }
            assert!(bx[0].contains(root));
        }
        assert!(bx[0].width() < 1e-9);
    }

    #[test]
    fn newton_ignores_unbounded_boxes() {
        let mut cx = Context::new();
        let e = cx.parse("x - 1").unwrap();
        let x = cx.var_id("x").unwrap();
        let newton = Newton::new(&mut cx, &[e], &[x]);
        let mut bx = IBox::entire(1);
        assert_eq!(newton.contract(&mut bx), Outcome::Unchanged);
    }

    #[test]
    #[should_panic(expected = "square system")]
    fn non_square_rejected() {
        let mut cx = Context::new();
        let e = cx.parse("x + y").unwrap();
        let x = cx.var_id("x").unwrap();
        let y = cx.var_id("y").unwrap();
        let _ = Newton::new(&mut cx, &[e], &[x, y]);
    }
}
