//! The BioCheck framework — the paper's primary contribution (Fig. 2):
//! a δ-decision–based workflow for modeling and analyzing single- and
//! multi-mode biological systems.
//!
//! ```text
//!  ODE / hybrid model ──► δ-decision parameter synthesis ──► δ-sat ──► calibrated model
//!         ▲                        │ unsat                          │
//!         │                        ▼                                ▼
//!   model refinement ◄── falsification (hypothesis rejected)   validation
//!         ▲                                                        │
//!         │ new hypotheses (SMC-based analysis)                    ▼
//!         └──────────────────────────────────────── stability & therapy synthesis
//! ```
//!
//! * [`calibrate`] — BioPSy-style guaranteed parameter synthesis from
//!   time-series data (Sec. IV-A): each data point becomes a reachability
//!   band linked by validated flow constraints.
//! * [`falsify`] — model falsification: an `unsat` answer proves *no*
//!   parameter values can produce the desired behavior (the
//!   Fenton–Karma "spike-and-dome" argument).
//! * [`therapy`] — therapeutic strategy identification over multi-mode
//!   automata (Sec. IV-B): shortest successful mode path + thresholds.
//! * [`stability`] — Lyapunov stability analysis (Sec. IV-C) with
//!   interval-Newton equilibrium localization.

pub mod calibrate;
pub mod falsify;
pub mod stability;
pub mod therapy;

pub use calibrate::{synthesize_parameters, CalibrationProblem, Dataset};
pub use falsify::{falsify_reachability, FalsificationOutcome};
pub use stability::{verify_stability, StabilityReport};
pub use therapy::{synthesize_therapy, TherapyPlan};
