//! The SMC branch of Fig. 2 through the engine: statistical model
//! checking of BLTL properties for models with probabilistic initial
//! states — three estimation methods sharing one cached sampler — plus
//! SMC-driven parameter estimation with the `SmcFit` substrate.
//!
//! Run with `cargo run --release --example smc_calibration`.

use biocheck::bltl::Bltl;
use biocheck::engine::{EstimateMethod, Query, Session, SmcSpec, Value};
use biocheck::expr::{Atom, RelOp};
use biocheck::interval::Interval;
use biocheck::models::classics;
use biocheck::smc::{Dist, SmcFit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Toggle switch: P(end in the u-high basin) for u0, v0 ~ U[0, 2].
    let toggle = classics::toggle_switch();
    let mut cx = toggle.cx.clone();
    let u_wins = cx.parse("u - v - 1").unwrap(); // u ≥ v + 1 at the end
    let prop = Bltl::eventually(
        40.0,
        Bltl::globally(5.0, Bltl::Prop(Atom::new(u_wins, RelOp::Ge))),
    );
    let session = Session::from_parts(cx, toggle.sys.clone());
    let smc = SmcSpec {
        init: vec![Dist::Uniform(0.0, 2.0), Dist::Uniform(0.0, 2.0)],
        params: vec![],
        property: prop,
        t_end: 45.0,
    };

    // Three queries against one session: the property compiles once,
    // the second and third are pure sampler-cache hits.
    let report = session
        .query(Query::Estimate {
            smc: smc.clone(),
            method: EstimateMethod::Chernoff {
                eps: 0.05,
                delta: 0.05,
            },
        })
        .seed(2020)
        .run()
        .expect("well-formed query");
    let Value::Estimate(est) = &report.value else {
        panic!("estimate expected")
    };
    println!(
        "toggle switch: P(u-basin) ≈ {:.3} ± {} ({} samples, Chernoff)",
        est.p_hat, est.half_width, est.samples
    );

    let report = session
        .query(Query::Estimate {
            smc: smc.clone(),
            method: EstimateMethod::Bayes {
                half_width: 0.05,
                confidence: 0.95,
                max_samples: 100_000,
            },
        })
        .seed(2021)
        .run()
        .expect("well-formed query");
    let Value::Estimate(bayes) = &report.value else {
        panic!("estimate expected")
    };
    println!(
        "           Bayes: {:.3} ({} samples)",
        bayes.p_hat, bayes.samples
    );

    let report = session
        .query(Query::Sprt {
            smc: smc.clone(),
            theta: 0.4,
            indiff: 0.05,
            alpha: 0.01,
            beta: 0.01,
            max_samples: 100_000,
        })
        .seed(2022)
        .run()
        .expect("well-formed query");
    let Value::Sprt(hyp) = &report.value else {
        panic!("SPRT expected")
    };
    println!(
        "           SPRT for p ≥ 0.4: {:?} ({} samples)",
        hyp.outcome, hyp.samples
    );
    let stats = session.stats();
    println!(
        "           (session cache: {} plan compile, {} sampler build, {} hits)",
        stats.plan_compiles, stats.sampler_builds, stats.cache_hits
    );

    // SMC-driven parameter estimation: recover the decay rate of a
    // first-order clearance model from a property specification (the
    // simulated-annealing substrate under the engine).
    let mut cx = biocheck::expr::Context::new();
    let x = cx.intern_var("x");
    let k = cx.intern_var("k");
    let rhs = cx.parse("-k*x").unwrap();
    let sys = biocheck::ode::OdeSystem::new(vec![x], vec![rhs]);
    let upper = cx.parse("0.38 - x").unwrap();
    let lower = cx.parse("0.33 - x").unwrap();
    let prop = Bltl::And(vec![
        Bltl::eventually(1.0, Bltl::Prop(Atom::new(upper, RelOp::Ge))),
        Bltl::Not(Box::new(Bltl::eventually(
            1.0,
            Bltl::Prop(Atom::new(lower, RelOp::Ge)),
        ))),
    ]);
    let fit = SmcFit::new(
        cx,
        sys,
        vec![Dist::Point(1.0)],
        vec![k],
        vec![Interval::new(0.2, 3.0)],
        prop,
        1.0,
    );
    let mut rng = StdRng::seed_from_u64(2020);
    let result = fit.run(&mut rng);
    println!(
        "SMC fit: k ≈ {:.3} (score {:.2}, {} simulations; ground truth ≈ 1.0)",
        result.params[0], result.score, result.simulations
    );
}
