//! Guaranteed parameter synthesis from time-series data (the BioPSy
//! workflow): find parameter values such that the ODE solution passes
//! through every observation band, or prove that none exist.

use biocheck_expr::{Atom, Context, VarId};
use biocheck_icp::{BranchAndPrune, Contractor, DeltaResult};
use biocheck_interval::{IBox, Interval};
use biocheck_ode::{FlowContractor, OdeSystem};

/// A time-series dataset: observations of selected state components at
/// increasing times, each with a ± tolerance band.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Observation times (strictly increasing, first > 0).
    pub times: Vec<f64>,
    /// One row per time: observed values of the observed components.
    pub values: Vec<Vec<f64>>,
    /// Indices of the observed state components.
    pub observed: Vec<usize>,
    /// Half-width of the acceptance band around each observation.
    pub tolerance: f64,
}

impl Dataset {
    /// Builds a dataset observing all components.
    ///
    /// # Panics
    ///
    /// Panics when shapes disagree or times are not increasing.
    pub fn full(times: Vec<f64>, values: Vec<Vec<f64>>, tolerance: f64) -> Dataset {
        assert_eq!(times.len(), values.len(), "one row per time");
        assert!(times.windows(2).all(|w| w[0] < w[1]), "increasing times");
        assert!(!values.is_empty(), "empty dataset");
        let dim = values[0].len();
        Dataset {
            times,
            values,
            observed: (0..dim).collect(),
            tolerance,
        }
    }
}

/// A calibration problem: system + known initial state + unknown
/// parameters with their prior ranges.
#[derive(Clone, Debug)]
pub struct CalibrationProblem {
    /// The expression context (cloned internally).
    pub cx: Context,
    /// The dynamics.
    pub sys: OdeSystem,
    /// Known initial state.
    pub init: Vec<f64>,
    /// Unknown parameters and their prior boxes.
    pub params: Vec<(VarId, Interval)>,
    /// Physical bounds for every state component (keeps boxes bounded).
    pub state_bounds: Vec<Interval>,
    /// δ of the decision procedure.
    pub delta: f64,
    /// Validated-integration base step.
    pub flow_step: f64,
}

/// Synthesizes parameter values consistent with the data.
///
/// Returns `Some((param_box, point))` with the witness parameter
/// intervals and a representative point on δ-sat, `None` when the
/// problem is unsat (**no** parameters in the prior box can reproduce
/// the data — a model falsification) or undecided within budget.
pub fn synthesize_parameters(
    problem: &CalibrationProblem,
    data: &Dataset,
) -> Option<(Vec<Interval>, Vec<f64>)> {
    let mut cx = problem.cx.clone();
    let n = problem.sys.dim();
    // Step variables per data segment: x@j is the state at times[j-1]
    // (x@0 = init, pinned), linked by flow contractors with pinned dwell.
    let mut flows: Vec<FlowContractor> = Vec::new();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut seg_vars: Vec<Vec<VarId>> = Vec::new();
    let init_vars: Vec<VarId> = (0..n).map(|d| cx.intern_var(&format!("@x0_{d}"))).collect();
    seg_vars.push(init_vars.clone());
    for (d, &v) in init_vars.iter().enumerate() {
        let vn = cx.var_node(v);
        let c = cx.constant(problem.init[d]);
        atoms.push(Atom::eq(&mut cx, vn, c));
    }
    let mut prev_t = 0.0;
    for (j, &t) in data.times.iter().enumerate() {
        let cur: Vec<VarId> = (0..n)
            .map(|d| cx.intern_var(&format!("@x{}_{d}", j + 1)))
            .collect();
        let tau = cx.intern_var(&format!("@tau{j}"));
        let fc = FlowContractor::new(
            &mut cx,
            &problem.sys,
            seg_vars[j].clone(),
            cur.clone(),
            tau,
            &[],
        )
        .with_step(problem.flow_step)
        .with_label(format!("data-segment {j}"));
        flows.push(fc);
        // Observation bands at this time.
        for (oi, &comp) in data.observed.iter().enumerate() {
            let v = cx.var_node(cur[comp]);
            let lo = cx.constant(data.values[j][oi] - data.tolerance);
            let hi = cx.constant(data.values[j][oi] + data.tolerance);
            atoms.push(Atom::ge(&mut cx, v, lo));
            atoms.push(Atom::le(&mut cx, v, hi));
        }
        seg_vars.push(cur);
        // Pin the dwell to the segment duration.
        let tau_node = cx.var_node(tau);
        let dt = cx.constant(t - prev_t);
        atoms.push(Atom::eq(&mut cx, tau_node, dt));
        prev_t = t;
    }
    // Solver box.
    let mut init_box = IBox::uniform(cx.num_vars(), Interval::ZERO);
    for &(v, range) in &problem.params {
        init_box[v.index()] = range;
    }
    for vars in &seg_vars {
        for (d, &v) in vars.iter().enumerate() {
            init_box[v.index()] = problem.state_bounds[d];
        }
    }
    for j in 0..data.times.len() {
        let tau = cx.var_id(&format!("@tau{j}")).unwrap();
        let dt = data.times[j] - if j == 0 { 0.0 } else { data.times[j - 1] };
        init_box[tau.index()] = Interval::new(0.0, dt * 1.01);
    }
    let refs: Vec<&dyn Contractor> = flows.iter().map(|f| f as &dyn Contractor).collect();
    let mut bp = BranchAndPrune::new(problem.delta);
    bp.max_splits = 50_000;
    match bp.solve(&cx, &atoms, &refs, &init_box) {
        DeltaResult::DeltaSat(w) => Some((
            problem
                .params
                .iter()
                .map(|&(v, _)| w.boxx[v.index()])
                .collect(),
            problem
                .params
                .iter()
                .map(|&(v, _)| w.point[v.index()])
                .collect(),
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates decay data from k = 1 and recovers k.
    #[test]
    fn recovers_decay_rate_from_data() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let k = cx.intern_var("k");
        let rhs = cx.parse("-k*x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        let times = vec![0.5, 1.0];
        let values: Vec<Vec<f64>> = times.iter().map(|&t: &f64| vec![(-t).exp()]).collect();
        let data = Dataset::full(times, values, 0.02);
        let problem = CalibrationProblem {
            cx,
            sys,
            init: vec![1.0],
            params: vec![(k, Interval::new(0.2, 3.0))],
            state_bounds: vec![Interval::new(0.0, 2.0)],
            delta: 0.01,
            flow_step: 0.05,
        };
        let (boxes, point) = synthesize_parameters(&problem, &data).expect("k = 1 fits");
        assert!(
            (point[0] - 1.0).abs() < 0.25,
            "recovered k = {} (box {:?})",
            point[0],
            boxes[0]
        );
    }

    #[test]
    fn incompatible_data_is_rejected() {
        // Decay data that *grows*: no positive k fits.
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let k = cx.intern_var("k");
        let rhs = cx.parse("-k*x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        let data = Dataset::full(vec![1.0], vec![vec![1.8]], 0.05);
        let problem = CalibrationProblem {
            cx,
            sys,
            init: vec![1.0],
            params: vec![(k, Interval::new(0.1, 3.0))],
            state_bounds: vec![Interval::new(0.0, 2.0)],
            delta: 0.01,
            flow_step: 0.05,
        };
        assert!(
            synthesize_parameters(&problem, &data).is_none(),
            "growth cannot come from decay"
        );
    }

    #[test]
    fn two_parameter_synthesis() {
        // x' = a - b·x: steady approach to a/b; data from (a, b) = (2, 1).
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let a = cx.intern_var("a");
        let b = cx.intern_var("b");
        let rhs = cx.parse("a - b*x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        // x(t) = 2 − 2e^{−t} from x(0) = 0.
        let times = vec![0.5, 1.5];
        let values: Vec<Vec<f64>> = times
            .iter()
            .map(|&t: &f64| vec![2.0 - 2.0 * (-t).exp()])
            .collect();
        let data = Dataset::full(times, values, 0.05);
        let problem = CalibrationProblem {
            cx,
            sys,
            init: vec![0.0],
            params: vec![(a, Interval::new(0.5, 4.0)), (b, Interval::new(0.25, 2.5))],
            state_bounds: vec![Interval::new(0.0, 5.0)],
            delta: 0.02,
            flow_step: 0.05,
        };
        let (_, point) = synthesize_parameters(&problem, &data).expect("fit exists");
        // The identifiable combination near t→∞ is a/b = 2; both data
        // points also constrain the rate. Loose check on the witness:
        let ratio = point[0] / point[1];
        assert!((ratio - 2.0).abs() < 0.6, "a/b = {ratio}");
    }

    #[test]
    #[should_panic(expected = "increasing times")]
    fn bad_dataset_rejected() {
        let _ = Dataset::full(vec![1.0, 1.0], vec![vec![0.0], vec![0.0]], 0.1);
    }
}
