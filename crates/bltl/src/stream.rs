//! Streaming BLTL monitoring: a [`Bltl`] formula compiled once into a
//! flat monitor plan, evaluated incrementally sample-by-sample.
//!
//! The offline [`Monitor`](crate::Monitor) recurses over the formula and
//! allocates one value vector per subformula per call. This module
//! instead compiles the formula into a [`CompiledBltl`] — a table of
//! subformula operations plus **one** multi-root
//! [`Program`] evaluating every atom term in a single
//! sweep — and evaluates it through a reusable [`MonitorScratch`] arena:
//!
//! * [`CompiledBltl::feed`] consumes one `(t, state)` sample and returns
//!   a three-valued [`Verdict`]; `True`/`False` mean the Boolean verdict
//!   at the start of the trace is already decided *no matter how the
//!   trajectory continues*, so a simulation loop can stop integrating
//!   (bounded operators decide as early as their semantics allow).
//! * [`CompiledBltl::finish_bool`] / [`CompiledBltl::finish_robustness`]
//!   finalize end-of-trace semantics; satisfaction and quantitative
//!   robustness come out of the same single pass over the samples and
//!   are bit-for-bit identical to the offline monitor (property-tested
//!   in `tests/stream_prop.rs`).
//!
//! After warm-up (one trace through a given plan), the whole
//! begin/feed/finish cycle performs zero heap allocations — enforced by
//! the counting-allocator test `tests/alloc.rs`.

use crate::Bltl;
use biocheck_expr::{Context, EvalScratch, NodeId, Program, RelOp, VarId};
use biocheck_ode::Trace;

/// Three-valued outcome of incremental monitoring.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The property holds at the start of the trace, whatever follows.
    True,
    /// The property is violated at the start of the trace, whatever
    /// follows.
    False,
    /// The observed prefix does not determine the verdict yet.
    Undecided,
}

impl Verdict {
    /// Logical negation (Kleene).
    fn not(self) -> Verdict {
        match self {
            Verdict::True => Verdict::False,
            Verdict::False => Verdict::True,
            Verdict::Undecided => Verdict::Undecided,
        }
    }

    /// `true` when the verdict is no longer [`Verdict::Undecided`].
    pub fn decided(self) -> bool {
        self != Verdict::Undecided
    }

    fn from_bool(b: bool) -> Verdict {
        if b {
            Verdict::True
        } else {
            Verdict::False
        }
    }
}

/// One subformula of the compiled plan. Children are indices into the
/// plan's operation table (always smaller than the node's own index).
#[derive(Clone, Debug)]
enum PlanOp {
    /// An atomic proposition: index into the margin table.
    Prop(u32),
    /// Negation.
    Not(u32),
    /// Conjunction (empty = the constant *true*).
    And(Vec<u32>),
    /// Disjunction (empty = the constant *false*).
    Or(Vec<u32>),
    /// Time-bounded until; `uidx` selects this node's scan-state slot.
    Until {
        lhs: u32,
        rhs: u32,
        bound: f64,
        uidx: u32,
    },
}

/// A [`Bltl`] formula compiled for streaming evaluation: flat subformula
/// table plus a single multi-root [`Program`] computing every distinct
/// atom term in one evaluation sweep per sample.
///
/// The plan is immutable and shareable across threads; all per-trace
/// state lives in a [`MonitorScratch`].
#[derive(Clone, Debug)]
pub struct CompiledBltl {
    /// Operations in child-before-parent order; the root is last.
    ops: Vec<PlanOp>,
    /// Per atom: (program output index, relation) — the margin transform.
    atoms: Vec<(u32, RelOp)>,
    /// All distinct atom terms as one compiled multi-root program.
    prog: Program,
    /// State variables, fixing the order of `feed`'s `state` slice.
    states: Vec<VarId>,
    /// Environment width (`Context::num_vars` at compile time).
    env_len: usize,
    /// Number of `Until` nodes (scan-state slots).
    n_untils: usize,
}

/// Reusable per-trace evaluation arena for a [`CompiledBltl`]: sample
/// times, atom margins, memoized subformula verdicts/robustness values,
/// and the per-`Until` incremental scan state. All buffers keep their
/// high-water-mark capacity across traces, so steady-state monitoring is
/// allocation-free.
#[derive(Clone, Debug, Default)]
pub struct MonitorScratch {
    /// Evaluation environment (parameters + scribbled states).
    env: Vec<f64>,
    /// Expression-evaluation buffers.
    eval: EvalScratch,
    /// Program output buffer (one slot per distinct atom term).
    out: Vec<f64>,
    /// Sample times.
    times: Vec<f64>,
    /// Margins, flat `[sample * n_atoms + atom]`.
    margins: Vec<f64>,
    /// Memoized Boolean verdict per op per sample index.
    bval: Vec<Vec<Verdict>>,
    /// Per until, per start index: next sample its Boolean scan reads.
    bfrontier: Vec<Vec<usize>>,
    /// Is the robustness value at `[op][sample]` final?
    rknown: Vec<Vec<bool>>,
    /// Memoized robustness value per op per sample index.
    rval: Vec<Vec<f64>>,
    /// Per until, per start index: next sample its robustness scan reads.
    rfrontier: Vec<Vec<usize>>,
    /// Per until, per start index: running `max_j min(prefix, rhs_j)`.
    rbest: Vec<Vec<f64>>,
    /// Per until, per start index: running `min_j lhs_j`.
    rprefix: Vec<Vec<f64>>,
    /// Whether the trace has ended (end-of-trace semantics apply).
    ended: bool,
}

impl MonitorScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> MonitorScratch {
        MonitorScratch::default()
    }

    /// Number of samples fed since the last [`CompiledBltl::begin`].
    pub fn samples(&self) -> usize {
        self.times.len()
    }
}

impl CompiledBltl {
    /// Compiles `f` over the given state layout. Atom terms are
    /// deduplicated and compiled into one multi-root [`Program`];
    /// repeated subformula *occurrences* still monitor independently (the
    /// formula is a tree, not a DAG).
    pub fn compile(cx: &Context, states: &[VarId], f: &Bltl) -> CompiledBltl {
        let mut ops = Vec::new();
        let mut roots: Vec<NodeId> = Vec::new();
        let mut root_of: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
        let mut atoms: Vec<(u32, RelOp)> = Vec::new();
        let mut atom_of: std::collections::HashMap<(NodeId, RelOp), u32> =
            std::collections::HashMap::new();
        let mut n_untils = 0usize;
        Self::lower(
            f,
            &mut ops,
            &mut roots,
            &mut root_of,
            &mut atoms,
            &mut atom_of,
            &mut n_untils,
        );
        CompiledBltl {
            ops,
            atoms,
            prog: Program::compile(cx, &roots),
            states: states.to_vec(),
            env_len: cx.num_vars(),
            n_untils,
        }
    }

    /// Post-order lowering; returns the new node's op index.
    fn lower(
        f: &Bltl,
        ops: &mut Vec<PlanOp>,
        roots: &mut Vec<NodeId>,
        root_of: &mut std::collections::HashMap<NodeId, u32>,
        atoms: &mut Vec<(u32, RelOp)>,
        atom_of: &mut std::collections::HashMap<(NodeId, RelOp), u32>,
        n_untils: &mut usize,
    ) -> u32 {
        let op = match f {
            Bltl::Prop(a) => {
                let aidx = *atom_of.entry((a.expr, a.op)).or_insert_with(|| {
                    let ridx = *root_of.entry(a.expr).or_insert_with(|| {
                        roots.push(a.expr);
                        (roots.len() - 1) as u32
                    });
                    atoms.push((ridx, a.op));
                    (atoms.len() - 1) as u32
                });
                PlanOp::Prop(aidx)
            }
            Bltl::Not(g) => PlanOp::Not(Self::lower(
                g, ops, roots, root_of, atoms, atom_of, n_untils,
            )),
            Bltl::And(gs) => PlanOp::And(
                gs.iter()
                    .map(|g| Self::lower(g, ops, roots, root_of, atoms, atom_of, n_untils))
                    .collect(),
            ),
            Bltl::Or(gs) => PlanOp::Or(
                gs.iter()
                    .map(|g| Self::lower(g, ops, roots, root_of, atoms, atom_of, n_untils))
                    .collect(),
            ),
            Bltl::Until { lhs, rhs, bound } => {
                let l = Self::lower(lhs, ops, roots, root_of, atoms, atom_of, n_untils);
                let r = Self::lower(rhs, ops, roots, root_of, atoms, atom_of, n_untils);
                let uidx = *n_untils as u32;
                *n_untils += 1;
                PlanOp::Until {
                    lhs: l,
                    rhs: r,
                    bound: *bound,
                    uidx,
                }
            }
        };
        ops.push(op);
        (ops.len() - 1) as u32
    }

    /// Environment width expected by [`CompiledBltl::begin`].
    pub fn env_len(&self) -> usize {
        self.env_len
    }

    /// Starts monitoring a new trace: resets `s` (keeping buffer
    /// capacity) and loads the parameter environment.
    pub fn begin(&self, s: &mut MonitorScratch, env: &[f64]) {
        s.env.clear();
        s.env.extend_from_slice(env);
        if s.env.len() < self.env_len {
            s.env.resize(self.env_len, 0.0);
        }
        s.out.clear();
        s.out.resize(self.prog.num_roots(), 0.0);
        s.times.clear();
        s.margins.clear();
        s.ended = false;
        let n_ops = self.ops.len();
        if s.bval.len() < n_ops {
            s.bval.resize(n_ops, Vec::new());
            s.rknown.resize(n_ops, Vec::new());
            s.rval.resize(n_ops, Vec::new());
        }
        for v in &mut s.bval {
            v.clear();
        }
        for v in &mut s.rknown {
            v.clear();
        }
        for v in &mut s.rval {
            v.clear();
        }
        if s.bfrontier.len() < self.n_untils {
            s.bfrontier.resize(self.n_untils, Vec::new());
            s.rfrontier.resize(self.n_untils, Vec::new());
            s.rbest.resize(self.n_untils, Vec::new());
            s.rprefix.resize(self.n_untils, Vec::new());
        }
        for v in &mut s.bfrontier {
            v.clear();
        }
        for v in &mut s.rfrontier {
            v.clear();
        }
        for v in &mut s.rbest {
            v.clear();
        }
        for v in &mut s.rprefix {
            v.clear();
        }
    }

    /// Feeds one sample and returns the current verdict of the formula
    /// at the *start* of the trace. `True`/`False` are final: the
    /// Boolean verdict on any extension of this prefix — in particular
    /// on the full trajectory — is the same, so integration can stop.
    ///
    /// # Panics
    ///
    /// Panics when `state` is shorter than the compiled state layout or
    /// when fed non-increasing times.
    pub fn feed(&self, s: &mut MonitorScratch, t: f64, state: &[f64]) -> Verdict {
        // A full assert, not a debug_assert: out-of-order times would
        // silently corrupt the bound checks of every `Until` scan, and
        // one compare per sample is noise next to the program sweep.
        assert!(
            s.times.last().is_none_or(|&last| last < t),
            "samples must arrive in strictly increasing time order"
        );
        for (&v, &x) in self.states.iter().zip(state) {
            s.env[v.index()] = x;
        }
        // One program sweep computes every distinct atom term.
        self.prog.eval_with(&s.env, &mut s.eval, &mut s.out);
        for &(ridx, op) in &self.atoms {
            let t = s.out[ridx as usize];
            s.margins.push(match op {
                RelOp::Ge | RelOp::Gt => t,
                RelOp::Le | RelOp::Lt => -t,
                RelOp::Eq => -t.abs(),
            });
        }
        let j = s.times.len();
        s.times.push(t);
        for v in &mut s.bval[..self.ops.len()] {
            v.push(Verdict::Undecided);
        }
        for v in &mut s.rknown[..self.ops.len()] {
            v.push(false);
        }
        for v in &mut s.rval[..self.ops.len()] {
            v.push(0.0);
        }
        for u in 0..self.n_untils {
            s.bfrontier[u].push(j);
            s.rfrontier[u].push(j);
            s.rbest[u].push(f64::NEG_INFINITY);
            s.rprefix[u].push(f64::INFINITY);
        }
        self.eval_b(s, self.ops.len() - 1, 0)
    }

    /// Ends the trace and returns the Boolean verdict (end-of-trace
    /// semantics: an `Until` still waiting for a witness is false). The
    /// result equals [`Monitor::check`](crate::Monitor::check) on the
    /// full trace bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics when no sample was fed.
    pub fn finish_bool(&self, s: &mut MonitorScratch) -> bool {
        assert!(!s.times.is_empty(), "finish before any sample");
        s.ended = true;
        match self.eval_b(s, self.ops.len() - 1, 0) {
            Verdict::True => true,
            Verdict::False => false,
            Verdict::Undecided => unreachable!("ended traces always decide"),
        }
    }

    /// Ends the trace and returns the quantitative robustness at the
    /// first sample, bit-for-bit equal to
    /// [`Monitor::robustness`](crate::Monitor::robustness) on the full
    /// trace. Both `finish_*` calls may be made on the same trace (the
    /// Boolean and robustness streams are independent).
    ///
    /// # Panics
    ///
    /// Panics when no sample was fed.
    pub fn finish_robustness(&self, s: &mut MonitorScratch) -> f64 {
        assert!(!s.times.is_empty(), "finish before any sample");
        s.ended = true;
        self.eval_r(s, self.ops.len() - 1, 0)
            .expect("ended traces always resolve robustness")
    }

    /// Offline convenience: monitors a whole [`Trace`], stopping the
    /// sample loop as soon as the verdict decides.
    pub fn check_trace(&self, s: &mut MonitorScratch, env: &[f64], trace: &Trace) -> bool {
        self.begin(s, env);
        for i in 0..trace.len() {
            if self.feed(s, trace.times()[i], trace.state(i)).decided() {
                break;
            }
        }
        self.finish_bool(s)
    }

    /// Offline convenience: one pass over a whole [`Trace`] producing
    /// both satisfaction and robustness.
    pub fn eval_trace(&self, s: &mut MonitorScratch, env: &[f64], trace: &Trace) -> (bool, f64) {
        self.begin(s, env);
        for i in 0..trace.len() {
            self.feed(s, trace.times()[i], trace.state(i));
        }
        (self.finish_bool(s), self.finish_robustness(s))
    }

    /// Boolean verdict of op `node` at sample index `i` under the
    /// observed prefix (three-valued; `True`/`False` are extension-proof
    /// unless the trace has ended, in which case they are final).
    fn eval_b(&self, s: &mut MonitorScratch, node: usize, i: usize) -> Verdict {
        let memo = s.bval[node][i];
        if memo.decided() {
            return memo;
        }
        let v = match &self.ops[node] {
            PlanOp::Prop(a) => {
                Verdict::from_bool(s.margins[i * self.atoms.len() + *a as usize] >= 0.0)
            }
            PlanOp::Not(c) => self.eval_b(s, *c as usize, i).not(),
            PlanOp::And(cs) => {
                let mut acc = Verdict::True;
                for &c in cs {
                    match self.eval_b(s, c as usize, i) {
                        Verdict::False => {
                            acc = Verdict::False;
                            break;
                        }
                        Verdict::Undecided => acc = Verdict::Undecided,
                        Verdict::True => {}
                    }
                }
                acc
            }
            PlanOp::Or(cs) => {
                let mut acc = Verdict::False;
                for &c in cs {
                    match self.eval_b(s, c as usize, i) {
                        Verdict::True => {
                            acc = Verdict::True;
                            break;
                        }
                        Verdict::Undecided => acc = Verdict::Undecided,
                        Verdict::False => {}
                    }
                }
                acc
            }
            &PlanOp::Until {
                lhs,
                rhs,
                bound,
                uidx,
            } => {
                // Resume the scan at its frontier; every (start, sample)
                // pair is inspected at most once across all feeds, which
                // keeps streaming as cheap as one offline pass. Mirrors
                // the offline scan exactly: bound first, then the
                // witness, then the prefix.
                loop {
                    let j = s.bfrontier[uidx as usize][i];
                    if j >= s.times.len() {
                        break if s.ended {
                            Verdict::False
                        } else {
                            Verdict::Undecided
                        };
                    }
                    if s.times[j] - s.times[i] > bound {
                        break Verdict::False;
                    }
                    match self.eval_b(s, rhs as usize, j) {
                        Verdict::True => break Verdict::True,
                        Verdict::Undecided => break Verdict::Undecided,
                        Verdict::False => {}
                    }
                    match self.eval_b(s, lhs as usize, j) {
                        Verdict::False => break Verdict::False,
                        Verdict::Undecided => break Verdict::Undecided,
                        Verdict::True => s.bfrontier[uidx as usize][i] = j + 1,
                    }
                }
            }
        };
        if v.decided() {
            s.bval[node][i] = v;
        }
        v
    }

    /// Robustness of op `node` at sample index `i`; `None` while future
    /// samples can still change the value. The accumulation order is
    /// identical to the offline `rob_vec` recursion, so resolved values
    /// match it bit-for-bit.
    fn eval_r(&self, s: &mut MonitorScratch, node: usize, i: usize) -> Option<f64> {
        if s.rknown[node][i] {
            return Some(s.rval[node][i]);
        }
        let v = match &self.ops[node] {
            PlanOp::Prop(a) => Some(s.margins[i * self.atoms.len() + *a as usize]),
            PlanOp::Not(c) => self.eval_r(s, *c as usize, i).map(|v| -v),
            PlanOp::And(cs) => {
                let mut acc = f64::INFINITY;
                let mut known = true;
                for &c in cs {
                    match self.eval_r(s, c as usize, i) {
                        Some(v) => acc = acc.min(v),
                        None => {
                            known = false;
                            break;
                        }
                    }
                }
                known.then_some(acc)
            }
            PlanOp::Or(cs) => {
                let mut acc = f64::NEG_INFINITY;
                let mut known = true;
                for &c in cs {
                    match self.eval_r(s, c as usize, i) {
                        Some(v) => acc = acc.max(v),
                        None => {
                            known = false;
                            break;
                        }
                    }
                }
                known.then_some(acc)
            }
            &PlanOp::Until {
                lhs,
                rhs,
                bound,
                uidx,
            } => {
                let u = uidx as usize;
                loop {
                    let j = s.rfrontier[u][i];
                    if j >= s.times.len() {
                        if s.ended {
                            break Some(s.rbest[u][i]);
                        }
                        break None;
                    }
                    if s.times[j] - s.times[i] > bound {
                        break Some(s.rbest[u][i]);
                    }
                    let Some(r) = self.eval_r(s, rhs as usize, j) else {
                        break None;
                    };
                    let Some(l) = self.eval_r(s, lhs as usize, j) else {
                        break None;
                    };
                    let best = s.rbest[u][i];
                    let prefix = s.rprefix[u][i];
                    s.rbest[u][i] = best.max(prefix.min(r));
                    s.rprefix[u][i] = prefix.min(l);
                    s.rfrontier[u][i] = j + 1;
                }
            }
        };
        if let Some(v) = v {
            s.rknown[node][i] = true;
            s.rval[node][i] = v;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Monitor;
    use biocheck_expr::Atom;

    /// x = [0, 1, 2, 3, 2, 1, 0] at t = 0..6 (the offline tests' tent).
    fn tent() -> Trace {
        let xs = [0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0];
        Trace::new(
            (0..7).map(|i| i as f64).collect(),
            xs.iter().map(|&v| vec![v]).collect(),
            vec![vec![0.0]; 7],
        )
    }

    fn prop(cx: &mut Context, src: &str, op: RelOp) -> Bltl {
        let e = cx.parse(src).unwrap();
        Bltl::Prop(Atom::new(e, op))
    }

    /// Streaming over the tent must agree with the offline monitor for a
    /// basket of formulas — Boolean and robustness, bit-for-bit.
    #[test]
    fn streaming_matches_offline_on_tent() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let states = [x];
        let formulas = vec![
            Bltl::eventually(3.0, prop(&mut cx, "x - 3", RelOp::Ge)),
            Bltl::eventually(2.0, prop(&mut cx, "x - 3", RelOp::Ge)),
            Bltl::globally(6.0, prop(&mut cx, "x", RelOp::Ge)),
            Bltl::globally(6.0, prop(&mut cx, "2.5 - x", RelOp::Ge)),
            Bltl::globally(2.0, prop(&mut cx, "2.5 - x", RelOp::Ge)),
            Bltl::globally(6.0, prop(&mut cx, "5 - x", RelOp::Ge)),
            Bltl::eventually(6.0, prop(&mut cx, "x - 3", RelOp::Ge)),
            Bltl::truth(),
            Bltl::Until {
                lhs: Box::new(prop(&mut cx, "2.5 - x", RelOp::Ge)),
                rhs: Box::new(prop(&mut cx, "x - 3", RelOp::Ge)),
                bound: 4.0,
            },
            Bltl::globally(
                2.0,
                Bltl::implies(
                    prop(&mut cx, "x - 1", RelOp::Ge),
                    Bltl::eventually(2.0, prop(&mut cx, "x - 3", RelOp::Ge)),
                ),
            ),
        ];
        let tr = tent();
        let mut mon = Monitor::new(&cx, &states);
        let mut s = MonitorScratch::new();
        let env = vec![0.0; cx.num_vars()];
        for f in &formulas {
            let plan = CompiledBltl::compile(&cx, &states, f);
            let (sat, rob) = plan.eval_trace(&mut s, &env, &tr);
            assert_eq!(sat, mon.check(f, &tr), "{f:?}");
            assert_eq!(
                rob.to_bits(),
                mon.robustness(f, &tr).to_bits(),
                "{f:?}: {rob} vs {}",
                mon.robustness(f, &tr)
            );
            assert_eq!(plan.check_trace(&mut s, &env, &tr), sat, "{f:?}");
        }
    }

    /// An `F≤bound p` with an early witness decides True before the end;
    /// a `G≤bound p` with an early violation decides False before the
    /// end; the tail samples never flip a decided verdict.
    #[test]
    fn early_decisions_are_stable() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let states = [x];
        let tr = tent();
        let env = vec![0.0; cx.num_vars()];
        let mut s = MonitorScratch::new();

        let f = Bltl::eventually(6.0, prop(&mut cx, "x - 2", RelOp::Ge));
        let plan = CompiledBltl::compile(&cx, &states, &f);
        plan.begin(&mut s, &env);
        let mut decided_at = None;
        for i in 0..tr.len() {
            let v = plan.feed(&mut s, tr.times()[i], tr.state(i));
            if decided_at.is_none() && v.decided() {
                decided_at = Some((i, v));
            } else if let Some((_, d)) = decided_at {
                assert_eq!(v, d, "decided verdicts must be stable");
            }
        }
        assert_eq!(decided_at, Some((2, Verdict::True)), "witness at t = 2");
        assert!(plan.finish_bool(&mut s));

        let g = Bltl::globally(6.0, prop(&mut cx, "1.5 - x", RelOp::Ge));
        let plan = CompiledBltl::compile(&cx, &states, &g);
        plan.begin(&mut s, &env);
        let mut first = None;
        for i in 0..tr.len() {
            let v = plan.feed(&mut s, tr.times()[i], tr.state(i));
            if first.is_none() && v.decided() {
                first = Some((i, v));
            }
        }
        assert_eq!(first, Some((2, Verdict::False)), "violation at t = 2");
        assert!(!plan.finish_bool(&mut s));
    }

    /// A bound reaching past the horizon stays undecided until `finish`.
    #[test]
    fn open_eventually_stays_undecided() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let states = [x];
        let f = Bltl::eventually(100.0, prop(&mut cx, "x - 10", RelOp::Ge));
        let plan = CompiledBltl::compile(&cx, &states, &f);
        let tr = tent();
        let env = vec![0.0; cx.num_vars()];
        let mut s = MonitorScratch::new();
        plan.begin(&mut s, &env);
        for i in 0..tr.len() {
            assert_eq!(plan.feed(&mut s, tr.times()[i], tr.state(i)), {
                Verdict::Undecided
            });
        }
        assert!(!plan.finish_bool(&mut s));
        assert_eq!(s.samples(), tr.len());
    }

    /// Parameters load through `begin`'s environment exactly like
    /// `Monitor::with_env`.
    #[test]
    fn parameters_via_env() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let thr = cx.intern_var("thr");
        let e = cx.parse("x - thr").unwrap();
        let f = Bltl::eventually(6.0, Bltl::Prop(Atom::new(e, RelOp::Ge)));
        let states = [x];
        let plan = CompiledBltl::compile(&cx, &states, &f);
        let tr = tent();
        let mut s = MonitorScratch::new();
        let mut env = vec![0.0; cx.num_vars()];
        env[thr.index()] = 2.5;
        assert!(plan.check_trace(&mut s, &env, &tr));
        env[thr.index()] = 3.5;
        assert!(!plan.check_trace(&mut s, &env, &tr));
    }

    /// Atom dedup: a formula mentioning the same term in several guises
    /// compiles one program root per distinct term.
    #[test]
    fn atoms_are_deduplicated() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let states = [x];
        let e = cx.parse("x - 1").unwrap();
        let f = Bltl::And(vec![
            Bltl::Prop(Atom::new(e, RelOp::Ge)),
            Bltl::eventually(3.0, Bltl::Prop(Atom::new(e, RelOp::Ge))),
            Bltl::Prop(Atom::new(e, RelOp::Le)),
        ]);
        let plan = CompiledBltl::compile(&cx, &states, &f);
        // Two atom entries (Ge and Le on the same term), one program root.
        assert_eq!(plan.atoms.len(), 2);
        assert_eq!(plan.prog.num_roots(), 1);
        let tr = tent();
        let mut s = MonitorScratch::new();
        let mut mon = Monitor::new(&cx, &states);
        let env = vec![0.0; cx.num_vars()];
        let (sat, rob) = plan.eval_trace(&mut s, &env, &tr);
        assert_eq!(sat, mon.check(&f, &tr));
        assert_eq!(rob.to_bits(), mon.robustness(&f, &tr).to_bits());
    }
}
