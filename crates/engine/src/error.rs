//! The engine's single error type.
//!
//! Every fallible engine entry point returns [`Error`], so callers match
//! on one enum instead of one ad-hoc failure type per substrate crate.
//! Two kinds of failure are deliberately **not** errors:
//!
//! * Budget exhaustion (split budgets, sample caps, cancellation,
//!   deadlines) is a normal outcome of a well-formed query — it is
//!   reported through [`crate::Outcome::Exhausted`] on the
//!   [`crate::Report`], never as an `Err`.
//! * Per-sample integration failures inside SMC sampling keep their
//!   conservative property-violation reading (exactly as in
//!   `biocheck_smc`), so a single blown-up trajectory cannot abort an
//!   estimation query.

use biocheck_hybrid::BhaError;
use biocheck_ode::{OdeError, ValidationError};
use std::error::Error as StdError;
use std::fmt;

/// Unified analysis-engine error.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// Numeric integration failed (e.g. [`crate::Session::simulate`]).
    Ode(OdeError),
    /// Validated (interval) integration failed.
    Validation(ValidationError),
    /// `.bha` hybrid-automaton text failed to parse.
    Parse(BhaError),
    /// The query requires the other kind of model: SMC/calibration/
    /// stability queries need a [`Session`](crate::Session) over an ODE
    /// model, reachability queries one over a hybrid automaton.
    WrongModel {
        /// The query kind that was attempted.
        query: &'static str,
        /// Model kind the query needs (`"ODE model"` / `"hybrid automaton"`).
        expected: &'static str,
        /// Model kind the session actually holds.
        got: &'static str,
    },
    /// A per-dimension argument does not match the model dimension.
    Shape {
        /// What was mis-sized (e.g. `"init distributions"`).
        what: &'static str,
        /// Expected length (the model dimension).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// A scalar query parameter is outside its admissible range.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// Human-readable constraint violation.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Ode(e) => write!(f, "integration failed: {e}"),
            Error::Validation(e) => write!(f, "validated integration failed: {e}"),
            Error::Parse(e) => write!(f, "model parse failed: {e}"),
            Error::WrongModel {
                query,
                expected,
                got,
            } => write!(
                f,
                "query `{query}` needs a session over a {expected}, \
                 but this session holds a {got}"
            ),
            Error::Shape {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected} entries, got {got}"),
            Error::InvalidParameter { what, detail } => {
                write!(f, "invalid query parameter `{what}`: {detail}")
            }
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Ode(e) => Some(e),
            Error::Validation(e) => Some(e),
            Error::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OdeError> for Error {
    fn from(e: OdeError) -> Error {
        Error::Ode(e)
    }
}

impl From<ValidationError> for Error {
    fn from(e: ValidationError) -> Error {
        Error::Validation(e)
    }
}

impl From<BhaError> for Error {
    fn from(e: BhaError) -> Error {
        Error::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e: Error = OdeError::NonFinite { t: 1.0 }.into();
        assert!(e.to_string().contains("integration failed"));
        assert!(e.source().is_some());
        let e: Error = ValidationError::StepUnderflow { t: 0.5 }.into();
        assert!(e.to_string().contains("validated"));
        let e: Error = BhaError {
            line: 3,
            message: "bad mode".into(),
        }
        .into();
        assert!(e.to_string().contains("line 3"));
        let e = Error::Shape {
            what: "init distributions",
            expected: 2,
            got: 1,
        };
        assert!(e.to_string().contains("expected 2"));
        assert!(e.source().is_none());
    }
}
