//! The query-serving subsystem: the paper's analysis toolchain packaged
//! as a deployable service.
//!
//! The engine (`biocheck_engine`) made every analysis a typed, seeded,
//! budgeted query against a per-model [`Session`](biocheck_engine::Session).
//! This crate adds the layer the ROADMAP's serving story needs on top:
//!
//! * [`registry::Registry`] — a multi-model **session registry**: models
//!   register by name with textual sources, are fingerprinted, and share
//!   one engine session per model across all clients and threads (the
//!   session transparently rebuilds only when a query introduces new
//!   expression vocabulary). [`registry::SessionCaps`] governs per-model
//!   memory — arena-node and compiled-artifact caps enforced by
//!   evict-and-rebuild from canonical source, with high-water gauges in
//!   [`registry::MemoryStats`] — and [`registry::persist::RegistryLog`]
//!   makes registrations durable: an append-only checksummed log of
//!   canonical sources, replayed on boot, so a `kill -9` restart serves
//!   the same models under the same fingerprints with no client
//!   re-registration.
//! * [`cache::ResultCache`] — a **cost-aware LRU result cache**: seeded
//!   queries under count-only budgets are pure functions of
//!   `(model fingerprint, canonical query, seed, caps)`, so whole
//!   [`Report`](biocheck_engine::Report)s are memoized, with
//!   byte-budgeted eviction and hit/miss/evict counters. A cached report
//!   is `fingerprint()`-identical to a fresh computation.
//! * [`scheduler::Scheduler`] — **fair FIFO admission** of concurrent
//!   requests over the existing work-stealing pool, bounded concurrency,
//!   per-request [`Budget`](biocheck_engine::Budget) and
//!   [`CancelToken`](biocheck_engine::CancelToken).
//! * [`wire`] — a **line-delimited JSON protocol** (typed requests in,
//!   serialized reports out) with [`json`] as the workspace's shared
//!   mini-JSON parser/serializer.
//! * [`server::ServeCore`] + [`server::serve`] — the transport-free core
//!   and the `biocheckd` TCP daemon; [`client::Client`] is the blocking
//!   counterpart used by tests, CI, and the bench load generator. A
//!   `--max-execute-ms` watchdog reaps wedged queries (typed
//!   `watchdog_cancelled` replies) so a stuck solver cannot pin an
//!   execution slot forever.
//! * [`metrics::ServeMetrics`] — **per-phase latency histograms**
//!   (lock-free, from `biocheck_obs`) recorded inline on the serving
//!   path and surfaced through `{"op":"stats"}` (percentile object),
//!   `{"op":"metrics"}` (Prometheus text exposition), and
//!   `biocheck_client --stats-watch`.
//!
//! Serving is deterministic per request: the same `(model, query, seed,
//! count budget)` produces a bit-identical report at any pool width, any
//! admission order, and any number of concurrent clients — cached or
//! recomputed.
//!
//! # Example (in-process)
//!
//! ```
//! use biocheck_serve::server::{ServeConfig, ServeCore};
//! use biocheck_serve::wire::{
//!     BudgetSpec, DistSpec, MethodSpec, ModelSource, PropSpec, QueryRequest, QuerySpec,
//!     SmcSpecWire,
//! };
//! use biocheck_expr::RelOp;
//!
//! let core = ServeCore::new(ServeConfig::default());
//! core.register(
//!     "decay",
//!     &ModelSource {
//!         states: vec![("x".into(), "-x".into())],
//!         consts: vec![],
//!     },
//! )
//! .unwrap();
//! let request = QueryRequest {
//!     model: "decay".into(),
//!     id: None,
//!     seed: 42,
//!     budget: BudgetSpec::default(),
//!     trace: false,
//!     query: QuerySpec::Estimate {
//!         smc: SmcSpecWire {
//!             init: vec![DistSpec::Uniform(0.5, 1.5)],
//!             params: vec![],
//!             property: PropSpec::Eventually {
//!                 bound: 0.01,
//!                 inner: Box::new(PropSpec::Prop { expr: "x - 1".into(), rel: RelOp::Ge }),
//!             },
//!             t_end: 0.01,
//!         },
//!         method: MethodSpec::Fixed { n: 100 },
//!     },
//! };
//! let (fresh, cached) = core.run_query(&request).unwrap();
//! assert!(!cached);
//! let (hit, cached) = core.run_query(&request).unwrap();
//! assert!(cached);
//! assert_eq!(fresh.fingerprint(), hit.fingerprint());
//! ```

pub mod cache;
pub mod case_studies;
pub mod client;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod trace;
pub mod wire;

pub use cache::{CacheStats, ResultCache};
pub use case_studies::{case_study_source, pinned_lint_json, CASE_STUDIES};
pub use client::{Client, ClientConfig, QueryReply};
pub use json::{parse_json, Json};
pub use metrics::ServeMetrics;
pub use registry::persist::{LoadedModel, RegistryLog, RegistryPersistStats};
pub use registry::{fingerprint64, MemoryStats, ModelEntry, Registry, SessionCaps};
pub use scheduler::{AdmitError, AdmitWait, Scheduler};
pub use server::{serve, Daemon, ServeConfig, ServeCore, ServeError};
pub use trace::{RequestTrace, TraceHub};
pub use wire::{
    BudgetSpec, DistSpec, MethodSpec, ModelSource, PropSpec, QueryRequest, QuerySpec, Request,
    SmcSpecWire,
};
