//! Sliding-window view over [`Histogram`]: recent-percentile queries
//! for long-lived daemons.
//!
//! A lifetime histogram's p99 goes stale after days of uptime — one
//! slow hour a week ago dominates forever. [`Windowed`] keeps a ring
//! of epoch histograms (e.g. 12 slots of 5 s for a 60 s window); each
//! record lands in the slot for the current tick, slots falling out of
//! the window are lazily reset on their next reuse, and a snapshot
//! merges the live slots. Recording stays lock-free (one relaxed tag
//! check plus a [`Histogram::record_ns`]); the windowed quantiles are
//! monitoring-grade — a record racing a slot reset at a tick boundary
//! may be lost, never double-counted.

use crate::hist::{Histogram, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One ring slot: the histogram for a single tick of the window.
struct WindowSlot {
    /// `tick + 1` of the data currently in `hist` (0 = never used).
    tag: AtomicU64,
    hist: Histogram,
}

/// A sliding window of recent samples with the same quantile API as a
/// lifetime [`Histogram`] snapshot. See the [module docs](self).
pub struct Windowed {
    epoch: Instant,
    slot_ns: u64,
    slots: Vec<WindowSlot>,
}

impl Windowed {
    /// A window covering `window`, resolved into `slots` ring slots
    /// (both clamped to useful minima). The effective window is
    /// `slots * (window / slots)`; a snapshot sees between
    /// `window - window/slots` and `window` of history depending on
    /// where the current tick stands.
    pub fn new(window: Duration, slots: usize) -> Windowed {
        let slots = slots.max(2);
        let slot_ns = (u64::try_from(window.as_nanos()).unwrap_or(u64::MAX) / slots as u64).max(1);
        Windowed {
            epoch: Instant::now(),
            slot_ns,
            slots: (0..slots)
                .map(|_| WindowSlot {
                    tag: AtomicU64::new(0),
                    hist: Histogram::new(),
                })
                .collect(),
        }
    }

    /// The standard daemon window: last 60 seconds in 5-second slots.
    pub fn last_minute() -> Windowed {
        Windowed::new(Duration::from_secs(60), 12)
    }

    /// The current tick number.
    fn tick(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX) / self.slot_ns
    }

    /// Records one sample into the current tick's slot.
    pub fn record_ns(&self, value: u64) {
        self.record_at(self.tick(), value);
    }

    /// Records a [`Duration`] (saturating at `u64::MAX` ns).
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merges the slots still inside the window into one [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        self.snapshot_at(self.tick())
    }

    /// Tick-explicit recording core (deterministic for tests).
    fn record_at(&self, tick: u64, value: u64) {
        let slot = &self.slots[(tick % self.slots.len() as u64) as usize];
        let tag = tick + 1;
        let cur = slot.tag.load(Ordering::Acquire);
        if cur != tag {
            // The slot still holds a previous lap. One thread wins the
            // tag CAS and resets; losers record straight away (their
            // tick is current either way — worst case a sample lands
            // during the winner's reset and is dropped).
            if cur < tag
                && slot
                    .tag
                    .compare_exchange(cur, tag, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                slot.hist.reset();
            }
        }
        slot.hist.record_ns(value);
    }

    /// Tick-explicit snapshot core (deterministic for tests).
    fn snapshot_at(&self, tick: u64) -> Snapshot {
        let n = self.slots.len() as u64;
        let oldest_tag = (tick + 1).saturating_sub(n - 1);
        let merged = Histogram::new();
        for slot in &self.slots {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag >= oldest_tag && tag <= tick + 1 {
                merged.merge(&slot.hist);
            }
        }
        merged.snapshot()
    }
}

impl std::fmt::Debug for Windowed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Windowed")
            .field("slots", &self.slots.len())
            .field("slot_ns", &self.slot_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windowed(slots: usize) -> Windowed {
        Windowed::new(Duration::from_secs(slots as u64), slots)
    }

    #[test]
    fn window_sees_recent_ticks_only() {
        let w = windowed(4);
        w.record_at(0, 100);
        w.record_at(1, 200);
        w.record_at(2, 300);
        // At tick 2 all three are inside the 4-slot window.
        assert_eq!(w.snapshot_at(2).count(), 3);
        // At tick 4 the window is ticks 1..=4: tick 0's sample aged out.
        let snap = w.snapshot_at(4);
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max_ns(), 300);
        // Far in the future nothing remains.
        assert_eq!(w.snapshot_at(40).count(), 0);
    }

    #[test]
    fn slot_reuse_resets_old_lap() {
        let w = windowed(2);
        w.record_at(0, 1_000);
        w.record_at(0, 1_000);
        // Tick 2 reuses slot 0; the old lap's samples must not leak in.
        w.record_at(2, 5_000);
        let snap = w.snapshot_at(2);
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.max_ns(), 5_000);
    }

    #[test]
    fn quantiles_track_the_window_not_the_lifetime() {
        let w = windowed(4);
        // An ancient burst of slow samples…
        for _ in 0..100 {
            w.record_at(0, 1_000_000);
        }
        // …then a recent steady state of fast ones.
        for tick in 10..13u64 {
            for _ in 0..100 {
                w.record_at(tick, 1_000);
            }
        }
        let snap = w.snapshot_at(12);
        assert_eq!(snap.count(), 300);
        assert!(snap.quantile(0.99) < 2_000, "old burst must have aged out");
    }

    #[test]
    fn wall_clock_api_smoke() {
        let w = Windowed::last_minute();
        w.record(Duration::from_millis(3));
        w.record_ns(500);
        let snap = w.snapshot();
        assert_eq!(snap.count(), 2);
        assert!(snap.quantile(1.0) >= 3_000_000);
    }
}
