//! Guaranteed parameter synthesis from time-series data (the BioPSy
//! workflow) — **compatibility front-end**.
//!
//! The implementation lives in [`biocheck_engine::calibrate`]; prefer
//! `Query::Calibrate` on a `biocheck_engine::Session`, which caches
//! compiled artifacts, accepts a budget, and distinguishes
//! unsatisfiability from budget exhaustion.

pub use biocheck_engine::{Calibration, CalibrationProblem, Dataset};

use biocheck_interval::Interval;

/// Deprecated wrapper over the engine: synthesizes parameter values
/// consistent with the data, with no budget and no exhaustion
/// signal. Use `biocheck_engine::Session::query` with
/// `Query::Calibrate` instead.
#[doc(hidden)]
pub fn synthesize_parameters(
    problem: &CalibrationProblem,
    data: &Dataset,
) -> Option<(Vec<Interval>, Vec<f64>)> {
    biocheck_engine::calibrate::synthesize_parameters(problem, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use biocheck_expr::Context;
    use biocheck_ode::OdeSystem;

    /// Generates decay data from k = 1 and recovers k.
    #[test]
    fn recovers_decay_rate_from_data() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let k = cx.intern_var("k");
        let rhs = cx.parse("-k*x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        let times = vec![0.5, 1.0];
        let values: Vec<Vec<f64>> = times.iter().map(|&t: &f64| vec![(-t).exp()]).collect();
        let data = Dataset::full(times, values, 0.02);
        let problem = CalibrationProblem {
            cx,
            sys,
            init: vec![1.0],
            params: vec![(k, Interval::new(0.2, 3.0))],
            state_bounds: vec![Interval::new(0.0, 2.0)],
            delta: 0.01,
            flow_step: 0.05,
        };
        let (boxes, point) = synthesize_parameters(&problem, &data).expect("k = 1 fits");
        assert!(
            (point[0] - 1.0).abs() < 0.25,
            "recovered k = {} (box {:?})",
            point[0],
            boxes[0]
        );
    }

    #[test]
    fn incompatible_data_is_rejected() {
        // Decay data that *grows*: no positive k fits.
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let k = cx.intern_var("k");
        let rhs = cx.parse("-k*x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        let data = Dataset::full(vec![1.0], vec![vec![1.8]], 0.05);
        let problem = CalibrationProblem {
            cx,
            sys,
            init: vec![1.0],
            params: vec![(k, Interval::new(0.1, 3.0))],
            state_bounds: vec![Interval::new(0.0, 2.0)],
            delta: 0.01,
            flow_step: 0.05,
        };
        assert!(
            synthesize_parameters(&problem, &data).is_none(),
            "growth cannot come from decay"
        );
    }

    #[test]
    fn two_parameter_synthesis() {
        // x' = a - b·x: steady approach to a/b; data from (a, b) = (2, 1).
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let a = cx.intern_var("a");
        let b = cx.intern_var("b");
        let rhs = cx.parse("a - b*x").unwrap();
        let sys = OdeSystem::new(vec![x], vec![rhs]);
        // x(t) = 2 − 2e^{−t} from x(0) = 0.
        let times = vec![0.5, 1.5];
        let values: Vec<Vec<f64>> = times
            .iter()
            .map(|&t: &f64| vec![2.0 - 2.0 * (-t).exp()])
            .collect();
        let data = Dataset::full(times, values, 0.05);
        let problem = CalibrationProblem {
            cx,
            sys,
            init: vec![0.0],
            params: vec![(a, Interval::new(0.5, 4.0)), (b, Interval::new(0.25, 2.5))],
            state_bounds: vec![Interval::new(0.0, 5.0)],
            delta: 0.02,
            flow_step: 0.05,
        };
        let (_, point) = synthesize_parameters(&problem, &data).expect("fit exists");
        // The identifiable combination near t→∞ is a/b = 2; both data
        // points also constrain the rate. Loose check on the witness:
        let ratio = point[0] / point[1];
        assert!((ratio - 2.0).abs() < 0.6, "a/b = {ratio}");
    }

    #[test]
    #[should_panic(expected = "increasing times")]
    fn bad_dataset_rejected() {
        let _ = Dataset::full(vec![1.0, 1.0], vec![vec![0.0], vec![0.0]], 0.1);
    }
}
