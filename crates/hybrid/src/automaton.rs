//! The hybrid automaton data model.

use biocheck_expr::{Atom, Context, NodeId, VarId};
use biocheck_interval::Interval;
use biocheck_ode::OdeSystem;
use std::fmt::Write as _;

/// Index of a mode within an automaton.
pub type ModeId = usize;

/// A discrete control mode: flow dynamics plus invariant (Definition 6's
/// `flow_q` and `inv_q` predicates).
#[derive(Clone, Debug)]
pub struct Mode {
    /// Human-readable mode name.
    pub name: String,
    /// Right-hand sides `dx/dt`, one per automaton state variable.
    pub rhs: Vec<NodeId>,
    /// Invariant atoms that must hold while the system dwells here.
    pub invariants: Vec<Atom>,
}

/// A jump (Definition 6's `jump_{q→q'}` predicate): guard atoms trigger
/// the transition; resets map exit values to entry values (identity for
/// unlisted variables).
#[derive(Clone, Debug)]
pub struct Jump {
    /// Source mode.
    pub from: ModeId,
    /// Target mode.
    pub to: ModeId,
    /// Conjunction of guard atoms.
    pub guards: Vec<Atom>,
    /// Reset assignments `var := expr(x⁻)`.
    pub resets: Vec<(VarId, NodeId)>,
}

/// A hybrid automaton `H = ⟨X, Q, flow, jump, inv, init⟩` with an
/// LRF-representation, parameterized by its parameter variables
/// (Definition 12).
///
/// The automaton owns the expression [`Context`]; solvers extend it (e.g.
/// with step-indexed variables for BMC) through [`HybridAutomaton::cx`].
#[derive(Clone, Debug)]
pub struct HybridAutomaton {
    /// The expression arena all formulas live in.
    pub cx: Context,
    /// Continuous state variables (fixing the state-vector order).
    pub states: Vec<VarId>,
    /// Parameter variables with their synthesis ranges.
    pub params: Vec<(VarId, Interval)>,
    /// Modes, indexed by [`ModeId`].
    pub modes: Vec<Mode>,
    /// Jumps (any order).
    pub jumps: Vec<Jump>,
    /// The single initial mode `q0`.
    pub init_mode: ModeId,
    /// Initial-state constraints `init_{q0}(x)`.
    pub init: Vec<Atom>,
}

impl HybridAutomaton {
    /// Creates an automaton over the given state variables.
    pub fn new(cx: Context, states: Vec<VarId>) -> HybridAutomaton {
        HybridAutomaton {
            cx,
            states,
            params: Vec::new(),
            modes: Vec::new(),
            jumps: Vec::new(),
            init_mode: 0,
            init: Vec::new(),
        }
    }

    /// State-space dimension.
    pub fn dim(&self) -> usize {
        self.states.len()
    }

    /// Declares a parameter with its range; returns its variable.
    pub fn add_param(&mut self, name: &str, range: Interval) -> VarId {
        let v = self.cx.intern_var(name);
        self.params.push((v, range));
        v
    }

    /// Adds a mode; returns its id.
    ///
    /// # Panics
    ///
    /// Panics when `rhs` does not match the state dimension.
    pub fn add_mode(
        &mut self,
        name: impl Into<String>,
        rhs: Vec<NodeId>,
        invariants: Vec<Atom>,
    ) -> ModeId {
        assert_eq!(rhs.len(), self.states.len(), "one rhs per state variable");
        self.modes.push(Mode {
            name: name.into(),
            rhs,
            invariants,
        });
        self.modes.len() - 1
    }

    /// Adds a jump.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range mode ids.
    pub fn add_jump(
        &mut self,
        from: ModeId,
        to: ModeId,
        guards: Vec<Atom>,
        resets: Vec<(VarId, NodeId)>,
    ) {
        assert!(from < self.modes.len() && to < self.modes.len());
        self.jumps.push(Jump {
            from,
            to,
            guards,
            resets,
        });
    }

    /// Sets the initial mode and constraints.
    pub fn set_init(&mut self, mode: ModeId, init: Vec<Atom>) {
        assert!(mode < self.modes.len());
        self.init_mode = mode;
        self.init = init;
    }

    /// Looks up a mode id by name.
    pub fn mode_by_name(&self, name: &str) -> Option<ModeId> {
        self.modes.iter().position(|m| m.name == name)
    }

    /// The jumps leaving `mode`.
    pub fn jumps_from(&self, mode: ModeId) -> impl Iterator<Item = (usize, &Jump)> {
        self.jumps
            .iter()
            .enumerate()
            .filter(move |(_, j)| j.from == mode)
    }

    /// The flow of a mode as an [`OdeSystem`] over the automaton's states.
    pub fn flow_system(&self, mode: ModeId) -> OdeSystem {
        OdeSystem::new(self.states.clone(), self.modes[mode].rhs.clone())
    }

    /// Graphviz DOT rendering of the mode graph (the Fig. 3 artifact).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph hybrid {\n  rankdir=LR;\n");
        for (i, m) in self.modes.iter().enumerate() {
            let shape = if i == self.init_mode {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(s, "  m{i} [label=\"{}\", shape={shape}];", m.name);
        }
        for j in &self.jumps {
            let guard = j
                .guards
                .iter()
                .map(|g| g.display(&self.cx))
                .collect::<Vec<_>>()
                .join(" ∧ ");
            let _ = writeln!(s, "  m{} -> m{} [label=\"{guard}\"];", j.from, j.to);
        }
        s.push_str("}\n");
        s
    }

    /// A default full-context environment: parameters at range midpoints,
    /// everything else zero. Useful as the base for simulation.
    pub fn default_env(&self) -> Vec<f64> {
        let mut env = vec![0.0; self.cx.num_vars()];
        for &(v, range) in &self.params {
            env[v.index()] = range.mid();
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biocheck_expr::RelOp;

    fn two_mode() -> HybridAutomaton {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let up = cx.parse("1").unwrap();
        let down = cx.parse("0 - 1").unwrap();
        let guard_hi = cx.parse("x - 5").unwrap();
        let guard_lo = cx.parse("1 - x").unwrap();
        let mut ha = HybridAutomaton::new(cx, vec![x]);
        let rise = ha.add_mode("rise", vec![up], vec![]);
        let fall = ha.add_mode("fall", vec![down], vec![]);
        ha.add_jump(rise, fall, vec![Atom::new(guard_hi, RelOp::Ge)], vec![]);
        ha.add_jump(fall, rise, vec![Atom::new(guard_lo, RelOp::Ge)], vec![]);
        ha.set_init(rise, vec![]);
        ha
    }

    #[test]
    fn construction_and_lookup() {
        let ha = two_mode();
        assert_eq!(ha.dim(), 1);
        assert_eq!(ha.modes.len(), 2);
        assert_eq!(ha.mode_by_name("fall"), Some(1));
        assert_eq!(ha.mode_by_name("nope"), None);
        assert_eq!(ha.jumps_from(0).count(), 1);
        assert_eq!(ha.jumps_from(1).count(), 1);
        assert_eq!(ha.init_mode, 0);
    }

    #[test]
    fn flow_system_extraction() {
        let ha = two_mode();
        let sys = ha.flow_system(0);
        assert_eq!(sys.dim(), 1);
        let compiled = sys.compile(&ha.cx);
        let mut env = vec![0.0; ha.cx.num_vars()];
        let mut out = [0.0];
        compiled.deriv(&mut env, &[0.0], 0.0, &mut out);
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn params_and_env() {
        let mut ha = two_mode();
        let k = ha.add_param("k", Interval::new(2.0, 4.0));
        let env = ha.default_env();
        assert_eq!(env[k.index()], 3.0);
        assert_eq!(ha.params.len(), 1);
    }

    #[test]
    fn dot_output_mentions_modes_and_guards() {
        let ha = two_mode();
        let dot = ha.to_dot();
        assert!(dot.contains("rise"));
        assert!(dot.contains("fall"));
        assert!(dot.contains("->"));
        assert!(dot.contains("doublecircle")); // init mode highlighted
    }

    #[test]
    #[should_panic(expected = "one rhs per state")]
    fn wrong_rhs_arity() {
        let mut cx = Context::new();
        let x = cx.intern_var("x");
        let mut ha = HybridAutomaton::new(cx, vec![x]);
        ha.add_mode("bad", vec![], vec![]);
    }
}
