//! Deterministic chaos suite (`cargo test -p biocheck_serve --features
//! fault-injection`): drives the serving layer through injected solver
//! panics, torn replies, delayed replies, persistence and registry-log
//! I/O errors, and wedged (stalled) executions, and pins down the
//! fault-hardening invariants:
//!
//! * the daemon never deadlocks and never leaks scheduler slots;
//! * every accepted request resolves exactly once, with a well-formed
//!   reply (success or typed error) — a torn reply is a *transport*
//!   fault the client recovers from by retrying, never a corrupted
//!   server;
//! * the cache (in memory and on disk) is never corrupted: after any
//!   fault storm, recovered results are `fingerprint()`-identical to
//!   fresh computation;
//! * faults actually fired (a chaos run that injected nothing proves
//!   nothing).
//!
//! The fault schedule is a pure function of the installed plan's seed,
//! so single-threaded failures replay exactly. The injector is
//! process-global; [`chaos_lock`] serializes the tests around it.

#![cfg(feature = "fault-injection")]

use biocheck_serve::faults::{self, FaultPlan};
use biocheck_serve::server::{serve, ServeConfig, ServeCore, ServeError};
use biocheck_serve::wire::{
    BudgetSpec, DistSpec, MethodSpec, ModelSource, PropSpec, QueryRequest, QuerySpec, SmcSpecWire,
};
use biocheck_serve::{Client, ClientConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Serializes tests around the process-global fault injector.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clears the global plan even when the test body panics.
struct FaultGuard;
impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::clear();
    }
}

fn decay_source() -> ModelSource {
    ModelSource {
        states: vec![("x".into(), "-k*x".into())],
        consts: vec![("k".into(), 1.0)],
    }
}

fn estimate(expr: &str, seed: u64, n: usize) -> QueryRequest {
    QueryRequest {
        model: "decay".into(),
        id: None,
        seed,
        budget: BudgetSpec::default(),
        query: QuerySpec::Estimate {
            smc: SmcSpecWire {
                init: vec![DistSpec::Uniform(0.5, 1.5)],
                params: vec![],
                property: PropSpec::Eventually {
                    bound: 0.01,
                    inner: Box::new(PropSpec::Prop {
                        expr: expr.into(),
                        rel: biocheck_expr::RelOp::Ge,
                    }),
                },
                t_end: 0.01,
            },
            method: MethodSpec::Fixed { n },
        },
        trace: false,
    }
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("biocheck-chaos-{name}-{}", std::process::id()));
    p
}

/// Injected solver panics become clean `internal_error` replies; the
/// core (registry, cache, scheduler, in-flight table) stays fully
/// usable afterwards, and nothing half-computed is ever cached.
#[test]
fn solver_panics_are_contained_and_poison_nothing() {
    let _serial = chaos_lock();
    let core = ServeCore::new(ServeConfig::default());
    core.register("decay", &decay_source()).unwrap();

    faults::install(FaultPlan {
        seed: 0xC0FFEE,
        exec_panic_rate: 0.4,
        ..FaultPlan::default()
    });
    let _cleanup = FaultGuard;
    let mut panicked = 0u64;
    let mut succeeded = Vec::new();
    for seed in 0..40u64 {
        let qr = estimate("x - 1", seed, 30);
        match core.run_query(&qr) {
            Ok((report, cached)) => {
                assert!(!cached, "distinct seeds cannot hit the cache");
                succeeded.push((qr, report.fingerprint()));
            }
            Err(ServeError::Internal(msg)) => {
                assert!(msg.contains("panicked"), "{msg}");
                panicked += 1;
            }
            Err(other) => panic!("unexpected error under panic injection: {other}"),
        }
    }
    let stats = faults::clear();
    assert!(panicked > 0, "chaos run must actually inject panics");
    assert_eq!(stats.exec_panics, panicked, "every injected panic counted");
    assert_eq!(core.panic_count(), panicked);
    assert_eq!(core.scheduler().in_flight(), 0, "no leaked permits");

    // Faults off: the same core keeps serving, and every result that
    // made it into the cache is fingerprint-identical to the original.
    for (qr, fingerprint) in &succeeded {
        let (report, cached) = core.run_query(qr).unwrap();
        assert!(cached, "successful results must have been memoized");
        assert_eq!(&report.fingerprint(), fingerprint, "cache uncorrupted");
    }
    // A panicked request's key was never cached: re-running computes.
    let fresh = ServeCore::new(ServeConfig::default());
    fresh.register("decay", &decay_source()).unwrap();
    for seed in 0..40u64 {
        let qr = estimate("x - 1", seed, 30);
        let (a, _) = core.run_query(&qr).unwrap();
        let (b, _) = fresh.run_query(&qr).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}

/// A panicking solver terminates its trace instead of leaking it: the
/// unwind is caught at the panic boundary, so the hub publishes the
/// request with an `error` outcome and a *closed* span tree (the
/// `serve.execute` and `serve.request` records landed despite the
/// unwind), and the `inflight` view drains to empty — no active entry
/// is ever stranded.
#[test]
fn panicking_solver_publishes_terminated_trace_not_a_leak() {
    let _serial = chaos_lock();
    let core = ServeCore::new(ServeConfig::default());
    core.register("decay", &decay_source()).unwrap();
    core.trace_hub().arm();

    faults::install(FaultPlan {
        seed: 0xDEAD,
        exec_panic_rate: 1.0, // every execution panics
        ..FaultPlan::default()
    });
    let _cleanup = FaultGuard;
    let mut qr = estimate("x - 1", 3, 30);
    qr.trace = true;
    let err = core.run_query_traced(&qr).unwrap_err();
    assert!(matches!(err, ServeError::Internal(_)), "{err}");
    let stats = faults::clear();
    assert_eq!(stats.exec_panics, 1, "the panic must actually fire");

    match core.trace_hub().inflight_json() {
        biocheck_serve::Json::Arr(rows) => {
            assert!(rows.is_empty(), "panicked request leaked an inflight entry")
        }
        other => panic!("inflight must be an array, got {}", other.render()),
    }
    let recent = core.trace_hub().recent();
    assert_eq!(recent.len(), 1, "the panicked request was published");
    let t = &recent[0];
    assert_eq!(t.outcome, "error", "contained panic surfaces as error");
    for name in ["serve.request", "serve.execute"] {
        assert!(
            t.records.iter().any(|r| r.name == name),
            "span {name} did not terminate: {:?}",
            t.records.iter().map(|r| r.name).collect::<Vec<_>>()
        );
    }

    // Faults off: the same core (and its hub) keep working.
    let (_, cached, trace) = core.run_query_traced(&qr).unwrap();
    assert!(!cached, "nothing half-computed was cached");
    assert!(trace.is_some());
    assert_eq!(core.trace_hub().recent().len(), 2);
    assert_eq!(core.trace_hub().recent()[1].outcome, "ok");
}

/// Torn and delayed replies at the transport: the retrying client
/// recovers every query with fingerprints identical to a fault-free
/// core; the daemon survives and drains cleanly.
#[test]
fn torn_replies_recovered_by_client_retry() {
    let _serial = chaos_lock();
    let core = Arc::new(ServeCore::new(ServeConfig::default()));
    let daemon = serve(Arc::clone(&core), "127.0.0.1:0").unwrap();
    let addr = daemon.addr;

    let reference = ServeCore::new(ServeConfig::default());
    reference.register("decay", &decay_source()).unwrap();

    let config = ClientConfig {
        retries: 10,
        retry_base: Duration::from_millis(10),
        retry_cap: Duration::from_millis(100),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(addr, config.clone()).unwrap();
    client.register("decay", &decay_source()).unwrap();

    faults::install(FaultPlan {
        seed: 42,
        torn_reply_rate: 0.35,
        reply_delay_rate: 0.2,
        reply_delay_ms: 10,
        ..FaultPlan::default()
    });
    let _cleanup = FaultGuard;
    for seed in 0..25u64 {
        let qr = estimate("x - 1", seed, 25);
        let reply = client.query(&qr).expect("retry must recover the query");
        let (expected, _) = reference.run_query(&qr).unwrap();
        assert_eq!(
            reply.fingerprint,
            expected.fingerprint(),
            "reply for seed {seed} corrupted"
        );
    }
    let stats = faults::clear();
    assert!(
        stats.torn_replies > 0,
        "no replies were torn — proves nothing"
    );

    // The daemon is intact: clean shutdown drains and joins.
    let mut shut = Client::connect_with(addr, config).unwrap();
    shut.shutdown().unwrap();
    daemon.join();
    assert_eq!(core.scheduler().in_flight(), 0);
    assert_eq!(core.scheduler().queue_depth(), 0);
}

/// Disk faults on the spill path: appends fail silently (counted), the
/// request still succeeds, the in-memory cache still hits — and after
/// the fault storm the surviving log records are all valid.
#[test]
fn persist_io_errors_never_fail_requests() {
    let _serial = chaos_lock();
    let path = tmp_path("persist-io");
    let _ = std::fs::remove_file(&path);
    let core = ServeCore::new(ServeConfig {
        persist: Some(path.clone()),
        ..ServeConfig::default()
    });
    core.register("decay", &decay_source()).unwrap();

    faults::install(FaultPlan {
        seed: 7,
        persist_io_error_rate: 0.5,
        ..FaultPlan::default()
    });
    let _cleanup = FaultGuard;
    let mut fingerprints = Vec::new();
    for seed in 0..20u64 {
        let qr = estimate("x - 1", seed, 25);
        let (report, _) = core
            .run_query(&qr)
            .expect("disk faults must not fail queries");
        fingerprints.push(report.fingerprint());
        let (hit, cached) = core.run_query(&qr).unwrap();
        assert!(cached, "in-memory cache unaffected by disk faults");
        assert_eq!(hit.fingerprint(), report.fingerprint());
    }
    let stats = faults::clear();
    assert!(
        stats.persist_io_errors > 0,
        "no disk faults fired — proves nothing"
    );
    let p = core.persist_stats().unwrap();
    assert_eq!(p.append_errors as u64, stats.persist_io_errors);
    assert_eq!(p.appended + p.append_errors, 20);
    drop(core);

    // Reboot from the partially-written log: whatever survived loads
    // cleanly and warm hits are fingerprint-identical.
    let warm = ServeCore::new(ServeConfig {
        persist: Some(path.clone()),
        ..ServeConfig::default()
    });
    warm.register("decay", &decay_source()).unwrap();
    let recovered = warm.persist_stats().unwrap();
    assert_eq!(
        recovered.loaded, p.appended,
        "all successful appends recovered"
    );
    assert_eq!(recovered.skipped, 0);
    let mut warm_hits = 0;
    for seed in 0..20u64 {
        let qr = estimate("x - 1", seed, 25);
        let (report, cached) = warm.run_query(&qr).unwrap();
        assert_eq!(report.fingerprint(), fingerprints[seed as usize]);
        warm_hits += usize::from(cached);
    }
    assert_eq!(warm_hits, p.appended, "every persisted record warm-hits");
    let _ = std::fs::remove_file(&path);
}

/// A torn tail (the SIGKILL signature: the process died mid-append)
/// plus arbitrary garbage in the log: recovery skips the damage,
/// keeps every intact record, and compaction scrubs the file.
#[test]
fn crash_torn_log_recovers_and_warm_start_matches_fresh() {
    let _serial = chaos_lock();
    let path = tmp_path("torn-tail");
    let _ = std::fs::remove_file(&path);
    let mut fingerprints = Vec::new();
    {
        let core = ServeCore::new(ServeConfig {
            persist: Some(path.clone()),
            ..ServeConfig::default()
        });
        core.register("decay", &decay_source()).unwrap();
        for seed in 0..6u64 {
            let (r, _) = core.run_query(&estimate("x - 1", seed, 25)).unwrap();
            fingerprints.push(r.fingerprint());
        }
        // Dropped without shutdown/sync: every append was flushed, so
        // this models SIGKILL between requests.
    }
    // Model SIGKILL *mid-append*: a torn, checksum-less tail record.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"deadbeefdeadbeef {\"key\":\"torn mid-wri")
            .unwrap();
    }

    let warm = ServeCore::new(ServeConfig {
        persist: Some(path.clone()),
        ..ServeConfig::default()
    });
    warm.register("decay", &decay_source()).unwrap();
    let p = warm.persist_stats().unwrap();
    assert_eq!(p.loaded, 6, "all intact records recovered");
    assert_eq!(p.skipped, 1, "exactly the torn tail skipped");
    let fresh = ServeCore::new(ServeConfig::default());
    fresh.register("decay", &decay_source()).unwrap();
    for seed in 0..6u64 {
        let qr = estimate("x - 1", seed, 25);
        let (r, cached) = warm.run_query(&qr).unwrap();
        assert!(cached, "warm start must hit");
        assert_eq!(r.fingerprint(), fingerprints[seed as usize]);
        let (f2, _) = fresh.run_query(&qr).unwrap();
        assert_eq!(
            r.fingerprint(),
            f2.fingerprint(),
            "warm-start hit must equal fresh computation bit-for-bit"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Everything at once, concurrently: panics, torn replies, delays,
/// disk faults, a tight admission queue — 12 retrying clients × 5
/// queries. The run must terminate (no deadlock), every request must
/// resolve exactly once client-side, and the daemon must drain to
/// zero in-flight/queued with an uncorrupted cache.
#[test]
fn chaos_hammer_terminates_with_every_request_resolved() {
    let _serial = chaos_lock();
    let path = tmp_path("hammer");
    let _ = std::fs::remove_file(&path);
    let core = Arc::new(ServeCore::new(ServeConfig {
        concurrency: 2,
        max_queue: 4,
        persist: Some(path.clone()),
        ..ServeConfig::default()
    }));
    let daemon = serve(Arc::clone(&core), "127.0.0.1:0").unwrap();
    let addr = daemon.addr;
    {
        let mut c = Client::connect(addr).unwrap();
        c.register("decay", &decay_source()).unwrap();
    }

    faults::install(FaultPlan {
        seed: 0xBAD5EED,
        exec_panic_rate: 0.15,
        torn_reply_rate: 0.15,
        reply_delay_rate: 0.2,
        reply_delay_ms: 5,
        persist_io_error_rate: 0.3,
        ..FaultPlan::default()
    });
    let _cleanup = FaultGuard;
    let resolved = Arc::new(AtomicUsize::new(0));
    let config = ClientConfig {
        retries: 8,
        retry_base: Duration::from_millis(5),
        retry_cap: Duration::from_millis(50),
        ..ClientConfig::default()
    };
    let handles: Vec<_> = (0..12)
        .map(|t| {
            let resolved = Arc::clone(&resolved);
            let config = config.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_with(addr, config).unwrap();
                for q in 0..5u64 {
                    // Overlapping seeds across threads: cache traffic too.
                    let qr = estimate("x - 1", (t as u64 * 3 + q) % 20, 25);
                    // Success or a typed error — either way the request
                    // resolved exactly once; what must never happen is
                    // a hang or a malformed reply (query() would
                    // surface it as a parse failure after retries).
                    let _ = client.query(&qr);
                    resolved.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread must not hang or crash");
    }
    assert_eq!(
        resolved.load(Ordering::SeqCst),
        60,
        "every request resolved"
    );
    let stats = faults::clear();
    assert!(
        stats.exec_panics + stats.torn_replies + stats.persist_io_errors > 0,
        "hammer injected nothing — proves nothing"
    );

    // Faults off: daemon still healthy; drain leaves nothing behind.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let reference = ServeCore::new(ServeConfig::default());
    reference.register("decay", &decay_source()).unwrap();
    for seed in 0..20u64 {
        let qr = estimate("x - 1", seed, 25);
        let reply = client.query(&qr).unwrap();
        let (expected, _) = reference.run_query(&qr).unwrap();
        assert_eq!(reply.fingerprint, expected.fingerprint(), "cache corrupted");
    }
    client.shutdown().unwrap();
    daemon.join();
    assert_eq!(core.scheduler().in_flight(), 0, "drained to zero in-flight");
    assert_eq!(core.scheduler().queue_depth(), 0, "drained to zero queued");
    let _ = std::fs::remove_file(&path);
}

/// Disk faults on the registry log: registrations still succeed (the
/// in-memory registry is authoritative; persistence is best-effort and
/// counted), and a reboot replays exactly the appends that survived,
/// under their original fingerprints.
#[test]
fn registry_io_errors_never_fail_registration() {
    let _serial = chaos_lock();
    let path = tmp_path("registry-io");
    let _ = std::fs::remove_file(&path);
    let config = ServeConfig {
        registry: Some(path.clone()),
        ..ServeConfig::default()
    };
    let core = ServeCore::new(config.clone());
    faults::install(FaultPlan {
        seed: 11,
        registry_io_error_rate: 0.5,
        ..FaultPlan::default()
    });
    let _cleanup = FaultGuard;
    let mut fingerprints = Vec::new();
    for i in 0..12usize {
        let source = ModelSource {
            states: vec![("x".into(), format!("-{}*k*x", i + 1))],
            consts: vec![("k".into(), 1.0)],
        };
        let fp = core
            .register(&format!("m{i}"), &source)
            .expect("disk faults must not fail registration");
        fingerprints.push((format!("m{i}"), fp));
    }
    let stats = faults::clear();
    assert!(
        stats.registry_io_errors > 0,
        "no registry faults fired — proves nothing"
    );
    let r = core.registry_persist_stats().unwrap();
    assert_eq!(r.append_errors as u64, stats.registry_io_errors);
    assert_eq!(r.appended + r.append_errors, 12);
    assert_eq!(core.registry().len(), 12, "in-memory registry unaffected");
    drop(core);

    let warm = ServeCore::new(config);
    let recovered = warm.registry_persist_stats().unwrap();
    assert_eq!(
        recovered.loaded, r.appended,
        "every successful append replays"
    );
    assert_eq!(recovered.skipped, 0);
    let mut replayed = 0;
    for (name, fp) in &fingerprints {
        if let Some(entry) = warm.registry().get(name) {
            assert_eq!(entry.fingerprint(), fp, "replayed {name} changed identity");
            replayed += 1;
        }
    }
    assert_eq!(replayed, r.appended);
    let _ = std::fs::remove_file(&path);
}

/// The full kill -9 signature across BOTH logs: the process dies
/// mid-append leaving a torn registry-log tail; restart from the files
/// alone — with **no** client registration — and the daemon serves the
/// same model, same fingerprints, warm cache.
#[test]
fn kill9_with_torn_registry_tail_restores_service_without_reregistration() {
    let _serial = chaos_lock();
    let reg_path = tmp_path("registry-torn");
    let cache_path = tmp_path("cache-torn");
    let _ = std::fs::remove_file(&reg_path);
    let _ = std::fs::remove_file(&cache_path);
    let config = ServeConfig {
        registry: Some(reg_path.clone()),
        persist: Some(cache_path.clone()),
        ..ServeConfig::default()
    };
    let mut fingerprints = Vec::new();
    let model_fp;
    {
        let core = ServeCore::new(config.clone());
        model_fp = core.register("decay", &decay_source()).unwrap();
        for seed in 0..5u64 {
            let (r, _) = core.run_query(&estimate("x - 1", seed, 25)).unwrap();
            fingerprints.push(r.fingerprint());
        }
        // Dropped without shutdown: appends were flushed per record,
        // so this models SIGKILL between requests …
    }
    // … and this models SIGKILL *mid-append*: a torn, half-written
    // registration at the tail.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&reg_path)
            .unwrap();
        f.write_all(b"deadbeefdeadbeef {\"model\":\"dec").unwrap();
    }

    let warm = ServeCore::new(config);
    let r = warm.registry_persist_stats().unwrap();
    assert_eq!(r.loaded, 1, "the intact registration recovered");
    assert_eq!(r.skipped, 1, "exactly the torn tail skipped");
    let entry = warm
        .registry()
        .get("decay")
        .expect("model restored from the log alone — nobody re-registered");
    assert_eq!(entry.fingerprint(), model_fp);
    for (seed, fp) in fingerprints.iter().enumerate() {
        let (reply, cached) = warm.run_query(&estimate("x - 1", seed as u64, 25)).unwrap();
        assert!(
            cached,
            "cache key reachable through the replayed fingerprint"
        );
        assert_eq!(&reply.fingerprint(), fp, "reply identical across the crash");
    }
    // Compaction scrubbed the torn tail for good.
    let again = ServeCore::new(ServeConfig {
        registry: Some(reg_path.clone()),
        ..ServeConfig::default()
    });
    let r2 = again.registry_persist_stats().unwrap();
    assert_eq!((r2.loaded, r2.skipped), (1, 0));
    let _ = std::fs::remove_file(&reg_path);
    let _ = std::fs::remove_file(&cache_path);
}

/// Wedged solvers under the 12-thread hammer, against a governed
/// (capped) model: injected stalls wedge executions long past the
/// `--max-execute-ms` ceiling, the watchdog reaps every one (typed
/// `watchdog_cancelled`, permit released), evictions and cap rebuilds
/// race with in-flight queries, and no reply — reaped, capped, or
/// clean — ever diverges from the unbounded fault-free reference.
#[test]
fn watchdog_reaps_stalled_queries_under_capped_hammer() {
    let _serial = chaos_lock();
    let core = Arc::new(ServeCore::new(ServeConfig {
        concurrency: 4,
        max_queue: 64,
        max_execute: Some(Duration::from_millis(25)),
        max_arena_nodes: Some(60),
        max_artifacts: Some(4),
        ..ServeConfig::default()
    }));
    let daemon = serve(Arc::clone(&core), "127.0.0.1:0").unwrap();
    let addr = daemon.addr;
    {
        let mut c = Client::connect(addr).unwrap();
        c.register("decay", &decay_source()).unwrap();
    }
    // Unbounded, fault-free reference for every sweep literal.
    let reference = ServeCore::new(ServeConfig::default());
    reference.register("decay", &decay_source()).unwrap();
    let sweep: Vec<QueryRequest> = (0..20)
        .map(|i| estimate(&format!("x - 0.{:03}", 300 + i), 9, 25))
        .collect();
    let expected: Vec<String> = sweep
        .iter()
        .map(|qr| reference.run_query(qr).unwrap().0.fingerprint())
        .collect();

    faults::install(FaultPlan {
        seed: 0xD06,
        exec_stall_rate: 0.4,
        exec_stall_ms: 400, // 16x the ceiling: wedged until reaped
        ..FaultPlan::default()
    });
    let _cleanup = FaultGuard;
    let reaped = Arc::new(AtomicUsize::new(0));
    let sweep = Arc::new(sweep);
    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..12)
        .map(|t| {
            let (sweep, expected, reaped) = (
                Arc::clone(&sweep),
                Arc::clone(&expected),
                Arc::clone(&reaped),
            );
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for q in 0..5usize {
                    let j = (t * 5 + q) % sweep.len();
                    match client.query(&sweep[j]) {
                        Ok(reply) => assert_eq!(
                            reply.fingerprint, expected[j],
                            "hammer reply diverged on query {j}"
                        ),
                        Err(e) => {
                            assert!(
                                e.contains("watchdog"),
                                "only watchdog errors expected, got: {e}"
                            );
                            reaped.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread must not hang or crash");
    }
    let stats = faults::clear();
    assert!(stats.exec_stalls > 0, "no stalls injected — proves nothing");
    let reaped = reaped.load(Ordering::SeqCst) as u64;
    assert!(reaped > 0, "watchdog never fired under the hammer");
    assert_eq!(
        core.watchdog_cancelled_count(),
        reaped,
        "every reap surfaced as exactly one typed error"
    );
    let m = core.registry().memory_stats();
    assert!(m.arena_nodes_high_water <= 60, "cap held under the hammer");

    // Storm over: every sweep query (reaped ones included — they were
    // never memoized) now answers correctly, and the daemon drains.
    let mut client = Client::connect(addr).unwrap();
    for (j, qr) in sweep.iter().enumerate() {
        let reply = client.query(qr).unwrap();
        assert_eq!(reply.fingerprint, expected[j], "post-storm divergence");
    }
    client.shutdown().unwrap();
    daemon.join();
    assert_eq!(core.scheduler().in_flight(), 0, "no leaked permits");
    assert_eq!(core.scheduler().queue_depth(), 0);
}
