//! Criterion benches: one group per experiment of DESIGN.md §5.
//!
//! Each bench runs a configuration sized for repeated timing. The three
//! heavyweight syntheses (E1 dome refutation, E3 threshold synthesis,
//! E4 rescue-schedule synthesis — seconds to minutes each) are executed
//! once by the `report` binary instead; benching them here would take
//! hours under Criterion's sampling. Their fast sub-checks (E5 shares
//! E1's model and encoding; E9 shares E3/E4's BMC machinery) are benched
//! as proxies for the per-query cost.

use biocheck_bench as exp;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    // E1/E5 proxy: the cardiac reachability query (sub- and supra-
    // threshold stimulus verdicts; ~0.3 s per query pair).
    g.bench_function("e1_e5_cardiac_reach", |b| b.iter(exp::e5_robustness));
    // E2: guaranteed parameter synthesis (decay + Michaelis–Menten).
    g.bench_function("e2_parameter_synthesis", |b| {
        b.iter(exp::e2_parameter_synthesis)
    });
    // E6: CEGIS Lyapunov synthesis (3 systems).
    g.bench_function("e6_lyapunov", |b| b.iter(exp::e6_lyapunov));
    // E7: SMC verdicts (Chernoff + SPRT + p53).
    g.bench_function("e7_smc", |b| b.iter(exp::e7_smc));
    // E8: δ sweep — timing vs δ is the figure; bench the two extremes.
    g.bench_function("e8_delta_1e-1", |b| b.iter(|| exp::e8_delta_sweep(&[1e-1])));
    g.bench_function("e8_delta_1e-3", |b| b.iter(|| exp::e8_delta_sweep(&[1e-3])));
    // E9 (and E3/E4 proxy): BMC depth scaling with both solver routes.
    g.bench_function("e9_depth_k1", |b| b.iter(|| exp::e9_depth_scaling(1)));
    g.bench_function("e9_depth_k3", |b| b.iter(|| exp::e9_depth_scaling(3)));
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
