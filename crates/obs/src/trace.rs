//! Request-scoped tracing: a per-request span tree collected into a
//! lock-free bounded ring, plus live progress counters the solver
//! loops publish at their existing budget-poll points.
//!
//! The [`span!`](crate::span!) facade times *global* phases for the
//! process-wide [`Recorder`](crate::Recorder); this module answers the
//! per-request questions it cannot: "where did *this* query spend its
//! time" (the span tree) and "how far along is that 30-second run"
//! (the [`Progress`] counters). A [`TraceCtx`] is created by the
//! serving layer per traced request and threaded through the engine
//! inside the budget; everything here is observational — no trace
//! state ever feeds a fingerprint, a memoization key, or a persisted
//! byte.
//!
//! # Concurrency
//!
//! * [`Progress`] counters are relaxed atomics behind `Arc`s, so
//!   solver crates with no dependency on this crate can hold a plain
//!   `Arc<AtomicU64>` handle (the same shape as their cancellation
//!   flags) and publish with one relaxed store per budget poll.
//! * [`SpanRing`] is a bounded multi-producer collector built on
//!   per-slot seqlocks (the crossbeam recipe: odd sequence while a
//!   write is in flight, ticket-unique even value once complete).
//!   Pushing never blocks and never allocates; when the ring is full
//!   the oldest record is overwritten and counted in
//!   [`SpanRing::dropped`]. Readers validate the sequence around each
//!   slot copy, so a torn record is skipped, never observed.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Live progress counters for one request, published by the solver
/// loops at their existing budget-check points and polled by the
/// `inflight` stats block. Each counter is an `Arc<AtomicU64>` so it
/// can be handed to solver crates as a bare handle; cloning a
/// `Progress` clones the handles, not the counts.
#[derive(Clone, Debug, Default)]
pub struct Progress {
    /// SMC Bernoulli samples drawn so far.
    pub samples: Arc<AtomicU64>,
    /// Runge–Kutta integration steps taken across all drawn samples.
    pub rk_steps: Arc<AtomicU64>,
    /// ICP frontier boxes processed (branch-and-prune work unit).
    pub boxes: Arc<AtomicU64>,
    /// BMC unrolling depth currently being solved.
    pub depth: Arc<AtomicU64>,
    /// CDCL conflicts observed by the SAT core.
    pub conflicts: Arc<AtomicU64>,
    /// CDCL restarts performed by the SAT core.
    pub restarts: Arc<AtomicU64>,
}

impl Progress {
    /// A relaxed point-in-time copy of all counters.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            samples: self.samples.load(Ordering::Relaxed),
            rk_steps: self.rk_steps.load(Ordering::Relaxed),
            boxes: self.boxes.load(Ordering::Relaxed),
            depth: self.depth.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a request's [`Progress`] counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// SMC Bernoulli samples drawn.
    pub samples: u64,
    /// Runge–Kutta integration steps taken.
    pub rk_steps: u64,
    /// ICP frontier boxes processed.
    pub boxes: u64,
    /// BMC unrolling depth reached.
    pub depth: u64,
    /// CDCL conflicts.
    pub conflicts: u64,
    /// CDCL restarts.
    pub restarts: u64,
}

impl ProgressSnapshot {
    /// `(name, value)` pairs in a fixed order, for serialization.
    pub fn pairs(&self) -> [(&'static str, u64); 6] {
        [
            ("samples", self.samples),
            ("rk_steps", self.rk_steps),
            ("boxes", self.boxes),
            ("depth", self.depth),
            ("conflicts", self.conflicts),
            ("restarts", self.restarts),
        ]
    }
}

/// One completed span: an interval of request-relative time with an
/// id/parent link into the request's span tree.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the request, starting at 1.
    pub id: u32,
    /// Parent span id; 0 for a root span.
    pub parent: u32,
    /// Static phase name (e.g. `"engine.query"`).
    pub name: &'static str,
    /// Start offset from the request's trace epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the request's trace epoch, nanoseconds.
    pub end_ns: u64,
}

/// One ring slot. All record fields are atomics so racing writers can
/// never data-race in the language sense; the seqlock detects (and the
/// reader discards) any cross-field tearing.
struct Slot {
    /// Seqlock state: `2*ticket + 1` while the writer for `ticket` is
    /// copying fields in, `2*ticket + 2` once its record is complete.
    seq: AtomicU64,
    /// `id` in the high 32 bits, `parent` in the low 32.
    id_parent: AtomicU64,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
}

/// A lock-free bounded collector of completed [`SpanRecord`]s.
///
/// Capacity is fixed at construction; once full, each push overwrites
/// the oldest record (and [`dropped`](SpanRing::dropped) counts the
/// overwritten ones). Pushes are lock-free and allocation-free; under
/// pathological contention (a writer stalled mid-copy for a whole ring
/// lap) the incoming record is dropped rather than corrupting a newer
/// one, and that too is counted.
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Total pushes attempted; `head % capacity` is the next slot.
    head: AtomicU64,
    /// Records lost to writer contention (never written at all).
    contended: AtomicU64,
}

impl SpanRing {
    /// A ring holding the most recent `capacity` records (min 1).
    pub fn new(capacity: usize) -> SpanRing {
        let capacity = capacity.max(1);
        SpanRing {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    id_parent: AtomicU64::new(0),
                    name_ptr: AtomicUsize::new(0),
                    name_len: AtomicUsize::new(0),
                    start_ns: AtomicU64::new(0),
                    end_ns: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records pushed (including ones since overwritten).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records no longer readable: overwritten by newer pushes, plus
    /// the (pathological) contention drops.
    pub fn dropped(&self) -> u64 {
        let cap = self.slots.len() as u64;
        self.head.load(Ordering::Relaxed).saturating_sub(cap)
            + self.contended.load(Ordering::Relaxed)
    }

    /// Appends a record, overwriting the oldest when full.
    pub fn push(&self, rec: SpanRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Claim the slot: its sequence must be even (no writer active)
        // and belong to an *earlier* lap. A handful of retries covers
        // the realistic race (the previous occupant finishing its last
        // two stores); a writer stalled longer forfeits this record —
        // dropping is better than racing a newer lap for the slot.
        let claimed = (0..8).any(|_| {
            let seq = slot.seq.load(Ordering::Relaxed);
            seq.is_multiple_of(2)
                && seq <= 2 * ticket
                && slot
                    .seq
                    .compare_exchange(seq, 2 * ticket + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
        });
        if !claimed {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Order the odd sequence before the field stores: a reader that
        // observes any new field acquires the in-flight marker too.
        fence(Ordering::Release);
        slot.id_parent.store(
            (u64::from(rec.id) << 32) | u64::from(rec.parent),
            Ordering::Relaxed,
        );
        slot.name_ptr
            .store(rec.name.as_ptr() as usize, Ordering::Relaxed);
        slot.name_len.store(rec.name.len(), Ordering::Relaxed);
        slot.start_ns.store(rec.start_ns, Ordering::Relaxed);
        slot.end_ns.store(rec.end_ns, Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Copies out every readable record, oldest first. Records being
    /// overwritten concurrently are skipped, never torn.
    pub fn records(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let mut out = Vec::new();
        for ticket in head.saturating_sub(cap)..head {
            let slot = &self.slots[(ticket % cap) as usize];
            // Accept only the completed record for exactly this ticket.
            if slot.seq.load(Ordering::Acquire) != 2 * ticket + 2 {
                continue;
            }
            let id_parent = slot.id_parent.load(Ordering::Relaxed);
            let name_ptr = slot.name_ptr.load(Ordering::Relaxed);
            let name_len = slot.name_len.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let end_ns = slot.end_ns.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != 2 * ticket + 2 {
                continue;
            }
            // SAFETY: the sequence was the ticket's completion value on
            // both sides of the field loads, so every field was stored
            // by the single writer that claimed this ticket (claims go
            // through a CAS, completion values are ticket-unique and
            // never restored by another writer). That writer stored
            // `as_ptr()`/`len()` of one live `&'static str`, so the
            // pair reconstructs the exact string it came from.
            let name = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    name_ptr as *const u8,
                    name_len,
                ))
            };
            out.push(SpanRecord {
                id: (id_parent >> 32) as u32,
                parent: id_parent as u32,
                name,
                start_ns,
                end_ns,
            });
        }
        out
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Per-request trace context: the span collector, the progress
/// counters, and the request-relative clock they all share.
///
/// Created by the serving layer when a request is traced (or when the
/// daemon-wide trace hub is on) and threaded through the engine inside
/// the budget. Span *creation* follows the request's own control
/// thread — the parallel sample workers only bump counters — so the
/// implicit-parent nesting behaves like a stack; the ring itself
/// tolerates concurrent pushes regardless.
pub struct TraceCtx {
    epoch: Instant,
    next_id: AtomicU32,
    /// Innermost open span id (the implicit parent); 0 at top level.
    current: AtomicU32,
    /// Live progress counters for this request.
    pub progress: Progress,
    ring: SpanRing,
}

impl TraceCtx {
    /// Default span capacity per request.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// A fresh context whose clock starts now.
    pub fn new(capacity: usize) -> Arc<TraceCtx> {
        Arc::new(TraceCtx {
            epoch: Instant::now(),
            next_id: AtomicU32::new(1),
            current: AtomicU32::new(0),
            progress: Progress::default(),
            ring: SpanRing::new(capacity),
        })
    }

    /// Nanoseconds since this context was created.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span as a child of the innermost open span. The record
    /// is pushed when the returned guard drops — including during a
    /// panic unwind, so a crashing solver leaves a *terminated* span,
    /// never a leaked one.
    pub fn span(self: &Arc<TraceCtx>, name: &'static str) -> TraceSpan {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = self.current.swap(id, Ordering::Relaxed);
        TraceSpan {
            ctx: Arc::clone(self),
            id,
            parent,
            name,
            start_ns: self.elapsed_ns(),
        }
    }

    /// Completed spans, oldest first (see [`SpanRing::records`]).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.ring.records()
    }

    /// Spans lost to ring overflow or contention.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCtx")
            .field("elapsed_ns", &self.elapsed_ns())
            .field("progress", &self.progress.snapshot())
            .field("ring", &self.ring)
            .finish()
    }
}

/// RAII guard for one open span; see [`TraceCtx::span`].
#[must_use = "a trace span times its enclosing scope; bind it to a local"]
pub struct TraceSpan {
    ctx: Arc<TraceCtx>,
    id: u32,
    parent: u32,
    name: &'static str,
    start_ns: u64,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.ctx.ring.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            end_ns: self.ctx.elapsed_ns(),
        });
        // Restore the implicit parent for subsequent siblings.
        self.ctx.current.store(self.parent, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, start_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: 0,
            name: "test.span",
            start_ns,
            end_ns: start_ns + 1,
        }
    }

    #[test]
    fn nested_spans_link_parents_and_close_in_order() {
        let ctx = TraceCtx::new(16);
        {
            let _outer = ctx.span("outer");
            {
                let _inner = ctx.span("inner");
            }
            let _sibling = ctx.span("sibling");
        }
        let records = ctx.records();
        assert_eq!(records.len(), 3);
        let by_name = |n: &str| records.iter().find(|r| r.name == n).unwrap();
        let (outer, inner, sibling) = (by_name("outer"), by_name("inner"), by_name("sibling"));
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id);
        for r in &records {
            assert!(r.end_ns >= r.start_ns);
            assert!(r.end_ns <= ctx.elapsed_ns());
        }
        assert_eq!(ctx.dropped(), 0);
    }

    #[test]
    fn panicking_scope_still_records_a_terminated_span() {
        let ctx = TraceCtx::new(16);
        let ctx2 = Arc::clone(&ctx);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _span = ctx2.span("doomed.solver");
            panic!("solver blew up");
        }));
        assert!(result.is_err());
        let records = ctx.records();
        assert_eq!(records.len(), 1, "unwind must close the span");
        assert_eq!(records[0].name, "doomed.solver");
        assert!(records[0].end_ns >= records[0].start_ns);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let ring = SpanRing::new(4);
        for i in 0..10u32 {
            ring.push(rec(i, u64::from(i)));
        }
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 6);
        let ids: Vec<u32> = ring.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "newest survive, oldest first");
    }

    #[test]
    fn concurrent_pushes_equal_serial_merge() {
        const THREADS: u32 = 8;
        const PER_THREAD: u32 = 100;
        let ring = Arc::new(SpanRing::new((THREADS * PER_THREAD) as usize));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        ring.push(rec(t * PER_THREAD + i, u64::from(i)));
                    }
                });
            }
        });
        assert_eq!(ring.pushed(), u64::from(THREADS * PER_THREAD));
        assert_eq!(ring.dropped(), 0, "capacity covers every push");
        let mut got: Vec<u32> = ring.records().iter().map(|r| r.id).collect();
        got.sort_unstable();
        let want: Vec<u32> = (0..THREADS * PER_THREAD).collect();
        assert_eq!(got, want, "contended recording == serial merge");
        for r in ring.records() {
            assert_eq!(r.name, "test.span", "no torn name survived");
            assert_eq!(r.end_ns, r.start_ns + 1);
        }
    }

    #[test]
    fn progress_snapshot_reflects_counter_stores() {
        let p = Progress::default();
        p.samples.store(120, Ordering::Relaxed);
        p.boxes.store(7, Ordering::Relaxed);
        let snap = p.snapshot();
        assert_eq!(snap.samples, 120);
        assert_eq!(snap.boxes, 7);
        assert_eq!(snap.conflicts, 0);
        let pairs = snap.pairs();
        assert_eq!(pairs[0], ("samples", 120));
        assert_eq!(pairs.len(), 6);
    }
}
