//! Model falsification — **compatibility front-end**.
//!
//! The implementation lives in [`biocheck_engine::falsify`]; prefer
//! `Query::Falsify` on a `biocheck_engine::Session`, which threads
//! budgets and cancellation into the reachability search.

pub use biocheck_engine::FalsificationOutcome;

use biocheck_bmc::{ReachOptions, ReachSpec};
use biocheck_hybrid::HybridAutomaton;

/// Deprecated wrapper over the engine: checks whether the automaton can
/// reach the behavior described by `spec` for any parameter valuation
/// (`unsat` rejects the model). Use `biocheck_engine::Session::query`
/// with `Query::Falsify` instead.
#[doc(hidden)]
pub fn falsify_reachability(
    ha: &HybridAutomaton,
    spec: &ReachSpec,
    opts: &ReachOptions,
) -> FalsificationOutcome {
    biocheck_engine::falsify::falsify_reachability(ha, spec, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use biocheck_expr::{Atom, RelOp};
    use biocheck_interval::Interval;

    #[test]
    fn falsifies_impossible_behavior() {
        // Pure decay can never exceed its initial value.
        let mut ha = HybridAutomaton::parse_bha(
            r#"
            state x;
            param k = [0.1, 2.0];
            mode decay { flow: x' = -k*x; }
            init decay: x = 1;
            "#,
        )
        .unwrap();
        let e = ha.cx.parse("x - 1.5").unwrap();
        let spec = ReachSpec {
            goal_mode: None,
            goal: vec![Atom::new(e, RelOp::Ge)],
            k_max: 0,
            time_bound: 2.0,
        };
        let opts = ReachOptions {
            state_bounds: vec![Interval::new(0.0, 2.0)],
            ..ReachOptions::new(0.05)
        };
        assert!(falsify_reachability(&ha, &spec, &opts).is_falsified());
    }

    #[test]
    fn consistent_behavior_retains_model() {
        let mut ha = HybridAutomaton::parse_bha(
            r#"
            state x;
            param k = [0.1, 2.0];
            mode decay { flow: x' = -k*x; }
            init decay: x = 1;
            "#,
        )
        .unwrap();
        let e = ha.cx.parse("0.5 - x").unwrap(); // x ≤ 0.5 is reachable
        let spec = ReachSpec {
            goal_mode: None,
            goal: vec![Atom::new(e, RelOp::Ge)],
            k_max: 0,
            time_bound: 5.0,
        };
        let opts = ReachOptions {
            state_bounds: vec![Interval::new(0.0, 2.0)],
            ..ReachOptions::new(0.05)
        };
        match falsify_reachability(&ha, &spec, &opts) {
            FalsificationOutcome::Consistent(w) => {
                assert!(!w.params.is_empty());
            }
            other => panic!("expected consistency, got {other:?}"),
        }
    }
}
