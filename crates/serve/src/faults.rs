//! Deterministic fault injection (compiled only under the
//! `fault-injection` feature; `tests/chaos.rs` is the sole consumer).
//!
//! A process-global [`FaultPlan`] drives every hook from one seeded
//! splitmix64 stream, so a chaos run's fault schedule is a pure
//! function of its seed — a failing run replays exactly. Hooks sit at
//! the two boundaries the serving layer promises to survive:
//!
//! * **Execution**: [`exec_panic_point`] panics inside the query body
//!   (under the server's `catch_unwind`), modeling a solver bug.
//! * **Transport / disk**: [`torn_reply_len`] tears a reply mid-line,
//!   [`reply_delay`] stalls one, and [`persist_io_error`] fails a
//!   cache-spill append.
//!
//! With no plan installed every hook is a no-op, so fault-injection
//! builds behave identically to production builds until a test opts
//! in. Counters ([`FaultStats`]) let tests assert that faults actually
//! fired — a chaos test that injected nothing proves nothing.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Fault rates (each in `[0, 1]`) and the seed that schedules them.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the fault schedule.
    pub seed: u64,
    /// Probability a query execution panics mid-request.
    pub exec_panic_rate: f64,
    /// Probability a reply line is torn (a prefix is written, then the
    /// connection drops).
    pub torn_reply_rate: f64,
    /// Probability a reply is delayed by [`FaultPlan::reply_delay_ms`].
    pub reply_delay_rate: f64,
    /// Delay applied to delayed replies.
    pub reply_delay_ms: u64,
    /// Probability a cache-persistence append fails with an I/O error.
    pub persist_io_error_rate: f64,
    /// Probability a registry-log append fails with an I/O error.
    pub registry_io_error_rate: f64,
    /// Probability a query execution wedges for
    /// [`FaultPlan::exec_stall_ms`] (cancellable — the stall polls the
    /// request's `CancelToken`, modeling a solver stuck in a batch
    /// loop that the watchdog can still unwedge).
    pub exec_stall_rate: f64,
    /// Stall applied to wedged executions.
    pub exec_stall_ms: u64,
}

/// How many faults of each kind actually fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Panics raised by [`exec_panic_point`].
    pub exec_panics: u64,
    /// Replies torn by [`torn_reply_len`].
    pub torn_replies: u64,
    /// Replies delayed by [`reply_delay`].
    pub delayed_replies: u64,
    /// Appends failed by [`persist_io_error`].
    pub persist_io_errors: u64,
    /// Appends failed by [`registry_io_error`].
    pub registry_io_errors: u64,
    /// Executions wedged by [`exec_stall`].
    pub exec_stalls: u64,
}

struct Injector {
    plan: FaultPlan,
    rng: u64,
    stats: FaultStats,
}

impl Injector {
    /// splitmix64: one 64-bit draw per fault decision.
    fn next(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Bernoulli draw at `rate`.
    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < rate
    }
}

static INJECTOR: Mutex<Option<Injector>> = Mutex::new(None);

fn injector() -> MutexGuard<'static, Option<Injector>> {
    // The injector mutex can be poisoned by design: exec_panic_point
    // unwinds through frames that may hold it elsewhere. State is a
    // counter bundle; recovery is always safe.
    INJECTOR.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `plan`, replacing any previous one and zeroing counters.
pub fn install(plan: FaultPlan) {
    *injector() = Some(Injector {
        plan,
        rng: plan.seed,
        stats: FaultStats::default(),
    });
}

/// Uninstalls the plan and returns what fired while it was active.
pub fn clear() -> FaultStats {
    injector().take().map(|i| i.stats).unwrap_or_default()
}

/// Counters so far (plan still active).
pub fn stats() -> FaultStats {
    injector().as_ref().map(|i| i.stats).unwrap_or_default()
}

/// Execution-boundary hook: panics (outside the injector lock) when
/// the schedule says this request blows up.
pub fn exec_panic_point() {
    let fire = {
        let mut guard = injector();
        match guard.as_mut() {
            Some(inj) => {
                let fire = inj.roll(inj.plan.exec_panic_rate);
                if fire {
                    inj.stats.exec_panics += 1;
                }
                fire
            }
            None => false,
        }
    };
    if fire {
        panic!("injected fault: solver panic");
    }
}

/// Transport hook: `Some(prefix_len)` when this reply (of `len` bytes)
/// should be torn after `prefix_len` bytes.
pub fn torn_reply_len(len: usize) -> Option<usize> {
    let mut guard = injector();
    let inj = guard.as_mut()?;
    if !inj.roll(inj.plan.torn_reply_rate) {
        return None;
    }
    inj.stats.torn_replies += 1;
    // Anywhere from nothing to all-but-the-newline.
    Some((inj.next() as usize) % len.max(1))
}

/// Transport hook: `Some(delay)` when this reply should stall first.
pub fn reply_delay() -> Option<Duration> {
    let mut guard = injector();
    let inj = guard.as_mut()?;
    if inj.plan.reply_delay_ms == 0 || !inj.roll(inj.plan.reply_delay_rate) {
        return None;
    }
    inj.stats.delayed_replies += 1;
    Some(Duration::from_millis(inj.plan.reply_delay_ms))
}

/// Disk hook: `true` when this cache-spill append should fail.
pub fn persist_io_error() -> bool {
    let mut guard = injector();
    let Some(inj) = guard.as_mut() else {
        return false;
    };
    if !inj.roll(inj.plan.persist_io_error_rate) {
        return false;
    }
    inj.stats.persist_io_errors += 1;
    true
}

/// Disk hook: `true` when this registry-log append should fail.
pub fn registry_io_error() -> bool {
    let mut guard = injector();
    let Some(inj) = guard.as_mut() else {
        return false;
    };
    if !inj.roll(inj.plan.registry_io_error_rate) {
        return false;
    }
    inj.stats.registry_io_errors += 1;
    true
}

/// Execution-boundary hook: `Some(stall)` when this request should
/// wedge. The caller sleeps in short cancellable slices so the
/// watchdog's `CancelToken` can still unwedge it.
pub fn exec_stall() -> Option<Duration> {
    let mut guard = injector();
    let inj = guard.as_mut()?;
    if inj.plan.exec_stall_ms == 0 || !inj.roll(inj.plan.exec_stall_rate) {
        return None;
    }
    inj.stats.exec_stalls += 1;
    Some(Duration::from_millis(inj.plan.exec_stall_ms))
}
