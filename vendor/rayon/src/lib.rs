//! Minimal, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the rayon API its hot paths use: `into_par_iter`
//! / `par_iter` with `map` / `for_each` / `collect` / `sum`, plus
//! [`join`] and [`current_num_threads`]. Parallelism comes from
//! `std::thread::scope` fork-join over contiguous chunks rather than a
//! work-stealing pool — for the coarse-grained outer loops BioCheck
//! parallelizes (trajectory sampling, frontier batches of boxes), the
//! chunked schedule is within noise of work stealing.
//!
//! Ordering contract: `map` + `collect` preserves input order exactly,
//! regardless of thread count, so seeded computations stay deterministic.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel call will use at most.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Order-preserving parallel map over an owned item list.
fn par_map_vec<I, T, F>(items: Vec<I>, f: &F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<T>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon worker panicked"));
        }
        out
    })
}

/// An eager parallel iterator: adaptors apply immediately, in parallel.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<T: Send, F: Fn(I) -> T + Sync>(self, f: F) -> ParIter<T> {
        ParIter {
            items: par_map_vec(self.items, &f),
        }
    }

    /// Like `map`, but each worker first builds a state value with `init`
    /// and threads it through its chunk of items (rayon's `map_init`).
    /// Preserves input order.
    pub fn map_init<S, T, FI, F>(self, init: FI, f: F) -> ParIter<T>
    where
        T: Send,
        FI: Fn() -> S + Sync,
        F: Fn(&mut S, I) -> T + Sync,
    {
        let items = self.items;
        let n = items.len();
        let threads = current_num_threads().min(n).max(1);
        if threads <= 1 {
            let mut state = init();
            return ParIter {
                items: items.into_iter().map(|i| f(&mut state, i)).collect(),
            };
        }
        let chunk = n.div_ceil(threads);
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
        let mut it = items.into_iter();
        loop {
            let c: Vec<I> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
        let out = std::thread::scope(|s| {
            let init = &init;
            let f = &f;
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| {
                    s.spawn(move || {
                        let mut state = init();
                        c.into_iter().map(|i| f(&mut state, i)).collect::<Vec<T>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(n);
            for h in handles {
                out.extend(h.join().expect("rayon worker panicked"));
            }
            out
        });
        ParIter { items: out }
    }

    /// Runs `f` on every item in parallel (no results).
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        let _ = par_map_vec(self.items, &|i| f(i));
    }

    /// Parallel filter, preserving order.
    pub fn filter<F: Fn(&I) -> bool + Sync>(self, f: F) -> ParIter<I> {
        let kept = par_map_vec(self.items, &|i| if f(&i) { Some(i) } else { None });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Item count.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Parallel fold-reduce: `identity` seeds each chunk, `op` combines.
    pub fn reduce<F>(self, identity: impl Fn() -> I + Sync, op: F) -> I
    where
        F: Fn(I, I) -> I + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f64, 2.0, 3.0];
        let s: f64 = data.par_iter().map(|&x| x * x).sum();
        assert_eq!(s, 14.0);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn filter_and_count() {
        let n = (0..100usize).into_par_iter().filter(|i| i % 3 == 0).count();
        assert_eq!(n, 34);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
