//! Verifies the fused-pipeline acceptance criterion: after warm-up, a
//! full SMC Bernoulli sample — RNG fork, instantiation draw, streaming
//! integration, streaming monitoring, verdict — through a reused
//! [`SampleScratch`] performs zero heap allocations and builds zero
//! monitors or traces (the sibling of `crates/expr/tests/alloc.rs`,
//! `crates/icp/tests/alloc.rs`, and `crates/bltl/tests/alloc.rs`).
//!
//! This binary holds exactly one test so the global allocation counter
//! is not disturbed by concurrently running tests.

use biocheck_bltl::Bltl;
use biocheck_expr::{Atom, Context, RelOp};
use biocheck_ode::OdeSystem;
use biocheck_smc::{fork_rng, Dist, TraceSampler};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (ALLOCS.load(Ordering::Relaxed) - before, r)
}

/// Runs `f` up to a few times and asserts that at least one run performs
/// zero heap allocations. The counter is process-global, so a rare
/// background allocation from the test-harness runtime can land inside
/// the measured window; a genuine per-call allocation in `f` would show
/// up in *every* run, so retrying cannot mask a real regression.
fn assert_allocation_free<R>(what: &str, mut f: impl FnMut() -> R) -> R {
    let mut min = usize::MAX;
    for _ in 0..5 {
        let (n, r) = allocations(&mut f);
        min = min.min(n);
        if n == 0 {
            return r;
        }
    }
    panic!("{what} allocated at least {min} times in steady state");
}

#[test]
fn fused_smc_sampling_does_not_allocate() {
    // Harmonic oscillator with a nested response property that runs the
    // full horizon (robustness-grade workload): every sample integrates
    // the same trajectory (Point distributions), so buffer high-water
    // marks are reached after one warm-up sample.
    let mut cx = Context::new();
    let x = cx.intern_var("x");
    let v = cx.intern_var("v");
    let dx = cx.parse("v").unwrap();
    let dv = cx.parse("-x").unwrap();
    let sys = OdeSystem::new(vec![x, v], vec![dx, dv]);
    let ge = |cx: &mut Context, s: &str| {
        let e = cx.parse(s).unwrap();
        Bltl::Prop(Atom::new(e, RelOp::Ge))
    };
    let prop = Bltl::And(vec![
        Bltl::globally(6.0, ge(&mut cx, "2 - x")),
        Bltl::eventually(6.0, ge(&mut cx, "x - 0.5")),
    ]);
    let sampler = TraceSampler::new(
        cx,
        &sys,
        vec![Dist::Point(1.0), Dist::Point(0.0)],
        vec![],
        prop,
        6.0,
    );

    let mut scratch = sampler.scratch();
    // Warm-up: both the boolean path and the robustness path.
    let first = sampler.sample_with(&mut fork_rng(7, 0), &mut scratch);
    let (_, first_rob) = sampler.sample_robustness_with(&mut fork_rng(7, 0), &mut scratch);
    assert!(first, "x stays within [−1, 1]: the property holds");
    assert!(first_rob > 0.0);

    // Steady state: whole samples — fork_rng included, exactly as the
    // parallel batch loop runs them — without touching the heap.
    let (hits, rob) = assert_allocation_free("fused SMC sampling", || {
        let mut hits = 0usize;
        let mut rob = 0.0;
        for i in 0..20u64 {
            if sampler.sample_with(&mut fork_rng(7, i), &mut scratch) {
                hits += 1;
            }
            rob += sampler
                .sample_robustness_with(&mut fork_rng(7, i), &mut scratch)
                .1;
        }
        (hits, rob)
    });
    assert_eq!(hits, 20, "Point-distribution samples are identical");
    assert!((rob - 20.0 * first_rob).abs() < 1e-12);
}
