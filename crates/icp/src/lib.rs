//! Interval constraint propagation (ICP): the pruning engine behind
//! BioCheck's δ-decision procedures.
//!
//! The paper (Sections I and III) solves parameter-synthesis questions by
//! "adapting an interval constraint propagation based algorithm to explore
//! the parameter spaces". This crate is that algorithm:
//!
//! * [`Contractor`] — anything that can shrink an [`biocheck_interval::IBox`]
//!   without losing solutions. The workhorse implementation is [`Hc4`]
//!   (forward-backward propagation over the expression DAG); validated ODE
//!   enclosures plug in through the same trait from `biocheck-ode`.
//! * [`Propagator`] — runs a set of contractors to a fixpoint.
//! * [`BranchAndPrune`] — the δ-complete existential solver: prune with the
//!   *original* constraints (sound), branch on the widest dimension, answer
//!   `unsat` when the search space empties and `δ-sat` with a witness box
//!   when a box satisfies the δ-weakened constraints or shrinks below the
//!   resolution `ε`. This realizes the practical δ-completeness result of
//!   Gao–Kong–Clarke's dReal within BioCheck.
//! * [`Newton`] — a Krawczyk-style interval Newton contractor for square
//!   systems of equalities (used for equilibria and as an ablation).
//!
//! # Examples
//!
//! Deciding `x² + y² = 1 ∧ y ≥ x` in the unit box:
//!
//! ```
//! use biocheck_expr::{Atom, Context, RelOp};
//! use biocheck_icp::{BranchAndPrune, DeltaResult};
//! use biocheck_interval::{IBox, Interval};
//!
//! let mut cx = Context::new();
//! let circle = cx.parse("x^2 + y^2 - 1").unwrap();
//! let diag = cx.parse("y - x").unwrap();
//! let atoms = vec![Atom::new(circle, RelOp::Eq), Atom::new(diag, RelOp::Ge)];
//! let init = IBox::uniform(2, Interval::new(-2.0, 2.0));
//! let solver = BranchAndPrune::new(1e-3);
//! match solver.solve(&cx, &atoms, &[], &init) {
//!     DeltaResult::DeltaSat(w) => {
//!         let (x, y) = (w.point[0], w.point[1]);
//!         assert!((x * x + y * y - 1.0).abs() < 1e-2);
//!     }
//!     other => panic!("expected δ-sat, got {other:?}"),
//! }
//! ```

mod contract;
mod hc4;
mod newton;
mod propagate;
mod solve;

pub use contract::{Contractor, Outcome};
pub use hc4::Hc4;
pub use newton::Newton;
pub use propagate::Propagator;
pub use solve::{interrupted, BranchAndPrune, DeltaResult, Paving, Witness};
