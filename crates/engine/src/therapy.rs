//! Therapeutic strategy identification (Sec. IV-B): which drug to
//! deliver at what time, as a parameter-synthesis-for-reachability
//! problem over the treatment automaton, minimizing the number of drugs
//! (path length).
//!
//! Moved here from `biocheck_core` (which keeps a thin compatibility
//! wrapper). Prefer [`Query::Therapy`](crate::Query::Therapy) on a
//! [`Session`](crate::Session), which threads budgets and cancellation
//! into the reachability search and reports exhaustion distinctly from
//! "no schedule exists".

use biocheck_bmc::{check_reach, ReachOptions, ReachResult, ReachSpec};
use biocheck_hybrid::HybridAutomaton;
use biocheck_interval::Interval;

/// A synthesized treatment plan.
#[derive(Clone, Debug)]
pub struct TherapyPlan {
    /// Mode names along the successful path (drug sequence).
    pub schedule: Vec<String>,
    /// Dwell time in each mode.
    pub dwell_times: Vec<f64>,
    /// Synthesized trigger thresholds / parameters (name, interval).
    pub thresholds: Vec<(String, Interval)>,
    /// Number of distinct treatment modes used (drugs administered).
    pub drugs_used: usize,
}

/// Synthesizes the shortest successful treatment schedule: the minimal
/// number of jumps whose mode path reaches the goal (e.g. "alive at
/// time T with damage below threshold"), together with admissible
/// trigger thresholds.
///
/// Returns `None` when no schedule within `spec.k_max` jumps works.
pub fn synthesize_therapy(
    ha: &HybridAutomaton,
    spec: &ReachSpec,
    opts: &ReachOptions,
) -> Option<TherapyPlan> {
    synthesize_therapy_checked(ha, spec, opts).0
}

/// [`synthesize_therapy`] plus a flag telling whether the search was cut
/// short by a resource bound (`ReachResult::Unknown`) rather than
/// exhausting all paths.
pub(crate) fn synthesize_therapy_checked(
    ha: &HybridAutomaton,
    spec: &ReachSpec,
    opts: &ReachOptions,
) -> (Option<TherapyPlan>, bool) {
    match check_reach(ha, spec, opts) {
        ReachResult::DeltaSat(w) => {
            let schedule: Vec<String> = w.path.iter().map(|&m| ha.modes[m].name.clone()).collect();
            let mut seen = std::collections::BTreeSet::new();
            let drugs_used = schedule
                .iter()
                .skip(1) // initial mode is not a drug
                .filter(|name| seen.insert((*name).clone()))
                .count();
            (
                Some(TherapyPlan {
                    schedule,
                    dwell_times: w.dwell_times.clone(),
                    thresholds: w.param_box.clone(),
                    drugs_used,
                }),
                false,
            )
        }
        ReachResult::Unsat => (None, false),
        ReachResult::Unknown => (None, true),
    }
}
