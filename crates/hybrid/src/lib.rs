//! Hybrid automata with LRF-representations (Definitions 6–12 of the
//! paper): multiple operational modes, nonlinear ODE flows per mode, guard
//! and reset jumps, invariants, and parameterization.
//!
//! The paper argues that cell-signaling events and pharmacological
//! interventions induce *multi-mode* dynamics best modeled as hybrid
//! automata. This crate provides:
//!
//! * [`HybridAutomaton`] — the automaton itself, owning the expression
//!   [`biocheck_expr::Context`] all its formulas live in. Parameters are
//!   ordinary context variables with declared ranges (Definition 12).
//! * Simulation ([`HybridAutomaton::simulate`]) under urgent-jump
//!   semantics with event detection, producing a [`HybridTrajectory`]
//!   over the hybrid time domain (Definitions 8–10).
//! * A `.bha` text format ([`HybridAutomaton::parse_bha`]) mirroring
//!   dReach's `.drh` input language, and Graphviz export
//!   ([`HybridAutomaton::to_dot`]) which regenerates the paper's Fig. 3
//!   as an artifact.
//!
//! # Examples
//!
//! A thermostat-style two-mode system:
//!
//! ```
//! use biocheck_hybrid::HybridAutomaton;
//!
//! let src = r#"
//! state x;
//! mode heat {
//!   flow: x' = 1 - 0.1*x;
//!   jump to cool when x >= 5;
//! }
//! mode cool {
//!   flow: x' = -0.2*x;
//!   jump to heat when x <= 3;
//! }
//! init heat: x = 4;
//! "#;
//! let ha = HybridAutomaton::parse_bha(src).unwrap();
//! let traj = ha.simulate_default(&[4.0], 30.0).unwrap();
//! assert!(traj.mode_path().len() > 2, "must keep switching");
//! ```

mod automaton;
mod format;
mod simulate;

pub use automaton::{HybridAutomaton, Jump, Mode, ModeId};
pub use format::BhaError;
pub use simulate::{HybridTrajectory, Segment, SimError, SimOptions};
