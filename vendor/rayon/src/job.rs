//! Type-erased jobs and the latches that signal their completion.
//!
//! A [`JobRef`] is a fat-pointer-free, `Copy` handle to a job living on
//! some stack frame ([`StackJob`]) or on the heap ([`HeapJob`]). The
//! pointee must outlive every use of the handle; `StackJob` guarantees
//! this by having its creator block on the job's latch before the frame
//! unwinds, `HeapJob` by being consumed (and freed) exactly once when
//! executed.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::Thread;

/// A unit of work the pool can execute.
pub(crate) trait Job {
    /// Runs the job.
    ///
    /// # Safety
    ///
    /// `this` must point to a live job of the implementing type, and the
    /// job must be executed at most once.
    unsafe fn execute(this: *const Self);
}

/// Type-erased pointer to a [`Job`]. The lifetime of the pointee is
/// erased; see the module docs for the liveness discipline.
///
/// Equality compares the job identity (the data pointer).
#[derive(Copy, Clone)]
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

impl PartialEq for JobRef {
    fn eq(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.data, other.data)
    }
}

impl Eq for JobRef {}

impl std::fmt::Debug for JobRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRef").field("data", &self.data).finish()
    }
}

// SAFETY: a JobRef is only a pointer + fn pointer; the jobs it points to
// coordinate cross-thread access through their latches.
unsafe impl Send for JobRef {}

unsafe fn execute_erased<J: Job>(data: *const ()) {
    unsafe { J::execute(data.cast::<J>()) }
}

impl JobRef {
    /// Erases `job` into a sendable handle.
    ///
    /// # Safety
    ///
    /// The pointee must stay alive until the handle is executed or
    /// provably dropped unexecuted.
    pub(crate) unsafe fn new<J: Job>(job: *const J) -> JobRef {
        JobRef {
            data: job.cast::<()>(),
            exec: execute_erased::<J>,
        }
    }

    /// Runs the job.
    ///
    /// # Safety
    ///
    /// Must be called at most once, with the pointee still alive.
    pub(crate) unsafe fn execute(self) {
        unsafe { (self.exec)(self.data) }
    }

    /// Splits the handle into two machine words (for atomic deque slots).
    pub(crate) fn into_words(self) -> (usize, usize) {
        (self.data as usize, self.exec as usize)
    }

    /// Rebuilds a handle from [`JobRef::into_words`] output.
    ///
    /// # Safety
    ///
    /// The words must come from `into_words` of a handle whose pointee
    /// is still alive (the deque's top/bottom protocol guarantees this
    /// for every handle that wins the steal/pop race).
    pub(crate) unsafe fn from_words(data: usize, exec: usize) -> JobRef {
        JobRef {
            data: data as *const (),
            // SAFETY: `exec` was produced from this exact fn-pointer type.
            exec: unsafe { std::mem::transmute::<usize, unsafe fn(*const ())>(exec) },
        }
    }
}

/// Write-once completion flag, observed with `Acquire`/`Release`.
pub(crate) trait Latch {
    /// Marks the latch set and wakes any waiter.
    fn set(&self);
}

/// A latch whose state can be polled (by the work-stealing wait loop).
pub(crate) trait Probe {
    /// Returns `true` once the latch has been set.
    fn probe(&self) -> bool;
}

/// Latch for a waiter that is itself a pool worker: the waiter keeps
/// stealing while polling, parking briefly when nothing is runnable, and
/// `set` unparks it.
pub(crate) struct SpinLatch {
    done: AtomicBool,
    owner: Thread,
}

impl SpinLatch {
    /// Creates a latch owned by the current thread.
    pub(crate) fn new() -> SpinLatch {
        SpinLatch {
            done: AtomicBool::new(false),
            owner: std::thread::current(),
        }
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.done.store(true, Ordering::Release);
        self.owner.unpark();
    }
}

impl Probe for SpinLatch {
    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

/// Blocking latch for waiters outside the pool (no deque to drain).
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    /// Creates an unset latch.
    pub(crate) fn new() -> LockLatch {
        LockLatch {
            done: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Blocks the calling thread until the latch is set.
    pub(crate) fn wait(&self) {
        let mut done = self.done.lock().expect("latch mutex poisoned");
        while !*done {
            done = self.cond.wait(done).expect("latch mutex poisoned");
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.done.lock().expect("latch mutex poisoned");
        *done = true;
        self.cond.notify_all();
    }
}

/// Counting latch: set once `counter` jobs have completed. Used by
/// [`crate::scope`] to wait for all spawned jobs.
pub(crate) struct CountLatch {
    counter: AtomicUsize,
    inner: SpinLatch,
}

impl CountLatch {
    /// Creates a latch with an initial count of 1 (the scope body).
    pub(crate) fn new() -> CountLatch {
        CountLatch {
            counter: AtomicUsize::new(1),
            inner: SpinLatch::new(),
        }
    }

    /// Registers one more job to wait for.
    pub(crate) fn increment(&self) {
        self.counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one job complete; the last one sets the latch.
    pub(crate) fn decrement(&self) {
        if self.counter.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.inner.set();
        }
    }
}

impl Probe for CountLatch {
    fn probe(&self) -> bool {
        self.inner.probe()
    }
}

/// A job allocated on its creator's stack frame, carrying the closure,
/// a slot for the (possibly panicked) result, and a completion latch.
pub(crate) struct StackJob<L: Latch, F, R> {
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
}

// SAFETY: access to `func`/`result` is serialized by the latch protocol —
// the executor writes them before `latch.set()`, the creator reads them
// only after observing the latch set (Acquire pairs with the Release in
// `set`).
unsafe impl<L: Latch + Sync, F: Send, R: Send> Sync for StackJob<L, F, R> {}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    /// Wraps a closure and a latch into a stack job.
    pub(crate) fn new(latch: L, func: F) -> StackJob<L, F, R> {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
        }
    }

    /// The latch signalling completion.
    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// Erases this job into a [`JobRef`].
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive until the latch has been set.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        unsafe { JobRef::new(self) }
    }

    /// Extracts the result after the latch was observed set, resuming the
    /// unwind if the job panicked.
    ///
    /// # Panics
    ///
    /// Resumes the job's panic, or panics if the job never ran.
    pub(crate) fn into_result(self) -> R {
        match self.result.into_inner().expect("stack job never executed") {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl<L: Latch, F, R> Job for StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    unsafe fn execute(this: *const Self) {
        let this = unsafe { &*this };
        let func = unsafe { (*this.func.get()).take() }.expect("stack job executed twice");
        let result = catch_unwind(AssertUnwindSafe(func));
        unsafe { *this.result.get() = Some(result) };
        this.latch.set();
    }
}

/// A heap-allocated fire-and-forget job (used by `Scope::spawn`); freed
/// when executed.
pub(crate) struct HeapJob<F: FnOnce()> {
    func: F,
}

impl<F: FnOnce() + Send> HeapJob<F> {
    /// Boxes the closure and erases it into a [`JobRef`].
    pub(crate) fn erased(func: F) -> JobRef {
        let boxed = Box::new(HeapJob { func });
        // SAFETY: the box stays alive until `execute` reclaims it.
        unsafe { JobRef::new(Box::into_raw(boxed)) }
    }
}

impl<F: FnOnce()> Job for HeapJob<F> {
    unsafe fn execute(this: *const Self) {
        let boxed = unsafe { Box::from_raw(this.cast_mut()) };
        (boxed.func)();
    }
}

/// A panic payload captured from a spawned job.
pub(crate) type PanicPayload = Box<dyn Any + Send + 'static>;
