//! The daemon-wide trace hub: live in-flight visibility plus a bounded
//! history of completed request traces.
//!
//! [`biocheck_obs::TraceCtx`] collects one request's spans
//! and progress counters; this module is the serving layer around it.
//! A [`TraceHub`] owns two tables:
//!
//! * **active** — every request currently past admission control,
//!   keyed by a daemon-wide sequence number. Rendered as the
//!   `inflight` block of the `{"op":"stats"}` reply: elapsed time plus
//!   the live progress counters (SMC samples, RK steps, ICP boxes,
//!   BMC depth, CDCL conflicts/restarts) for traced requests.
//! * **recent** — the last [`RECENT_TRACES`] *traced* requests'
//!   complete span trees, each a [`RequestTrace`]. Rendered as Chrome
//!   `chrome://tracing` JSON by the `{"op":"trace_export"}` wire op
//!   and `biocheckd --trace-out`.
//!
//! Registration happens on the slow path only (after the first cache
//! check), so the memoized hit path never touches the hub. A request
//! leaves the active table through a guard drop, which runs on every
//! exit path — panics included — so a crashing solver produces a
//! *terminated* trace, never a leaked `inflight` row. None of the data
//! here feeds a fingerprint, a memoization key, or a persisted byte.

use crate::json::Json;
use crate::wire::u64_to_json;
use biocheck_obs::{ProgressSnapshot, SpanRecord, TraceCtx};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Completed traced requests retained for export.
pub const RECENT_TRACES: usize = 64;

/// One entry in the hub's active table.
struct ActiveRequest {
    model: String,
    kind: &'static str,
    /// Client-chosen wire id, when the request carried one.
    wire_id: Option<u64>,
    started: Instant,
    /// Present when the request is traced (span tree + counters);
    /// untraced requests still appear in `inflight` with elapsed time.
    ctx: Option<Arc<TraceCtx>>,
}

/// A finished traced request: everything needed to re-render its span
/// tree after the fact.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Daemon-wide trace sequence number.
    pub seq: u64,
    /// Model the query ran against.
    pub model: String,
    /// Query kind (`"estimate"`, `"lint"`, ...).
    pub kind: &'static str,
    /// Client-chosen wire id, when present.
    pub wire_id: Option<u64>,
    /// Start offset from the hub's epoch, nanoseconds (aligns requests
    /// on one shared export timeline).
    pub start_ns: u64,
    /// Wall time from hub registration to completion, nanoseconds.
    pub elapsed_ns: u64,
    /// `"ok"`, `"error"`, or `"panic"`.
    pub outcome: &'static str,
    /// Completed spans, oldest first.
    pub records: Vec<SpanRecord>,
    /// Spans lost to ring overflow or contention.
    pub dropped: u64,
    /// Final progress-counter values.
    pub progress: ProgressSnapshot,
}

/// The daemon-wide hub. One per [`ServeCore`](crate::ServeCore).
pub struct TraceHub {
    /// Armed by `--trace` / `--trace-out`: trace every request even
    /// without a per-request `"trace": true`.
    armed: AtomicBool,
    /// Echo each completed trace to stderr as one atomic block
    /// (`biocheckd --trace`).
    echo: AtomicBool,
    epoch: Instant,
    next_seq: AtomicU64,
    active: Mutex<HashMap<u64, ActiveRequest>>,
    recent: Mutex<VecDeque<RequestTrace>>,
}

impl Default for TraceHub {
    fn default() -> TraceHub {
        TraceHub {
            armed: AtomicBool::new(false),
            echo: AtomicBool::new(false),
            epoch: Instant::now(),
            next_seq: AtomicU64::new(1),
            active: Mutex::new(HashMap::new()),
            recent: Mutex::new(VecDeque::new()),
        }
    }
}

impl TraceHub {
    /// Trace every request, not just ones asking with `"trace": true`.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Is daemon-wide tracing on?
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Arm, and additionally echo each completed request's span tree
    /// to stderr as a single buffered block (so concurrent connections
    /// never interleave lines).
    pub fn arm_echo(&self) {
        self.arm();
        self.echo.store(true, Ordering::Relaxed);
    }

    /// Registers a request entering the execution path. The returned
    /// guard removes it — and, when traced, publishes its
    /// [`RequestTrace`] into the recent ring — on drop, every exit
    /// path included.
    pub fn begin<'hub>(
        &'hub self,
        model: &str,
        kind: &'static str,
        wire_id: Option<u64>,
        ctx: Option<Arc<TraceCtx>>,
    ) -> TraceGuard<'hub> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        self.active
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                seq,
                ActiveRequest {
                    model: model.to_string(),
                    kind,
                    wire_id,
                    started,
                    ctx,
                },
            );
        TraceGuard {
            hub: self,
            seq,
            ok: false,
        }
    }

    /// The `inflight` array of the stats reply: one object per active
    /// request, ordered by admission sequence.
    pub fn inflight_json(&self) -> Json {
        let table = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        let mut rows: Vec<(u64, &ActiveRequest)> = table.iter().map(|(&s, a)| (s, a)).collect();
        rows.sort_unstable_by_key(|&(seq, _)| seq);
        Json::Arr(
            rows.into_iter()
                .map(|(seq, a)| {
                    let mut pairs = vec![
                        ("seq", u64_to_json(seq)),
                        ("model", Json::str(a.model.clone())),
                        ("kind", Json::str(a.kind)),
                        (
                            "elapsed_ms",
                            Json::num(a.started.elapsed().as_secs_f64() * 1e3),
                        ),
                    ];
                    if let Some(id) = a.wire_id {
                        pairs.push(("id", u64_to_json(id)));
                    }
                    if let Some(ctx) = &a.ctx {
                        pairs.push(("progress", progress_json(&ctx.progress.snapshot())));
                    }
                    Json::obj(pairs)
                })
                .collect(),
        )
    }

    /// Completed traces, oldest first.
    pub fn recent(&self) -> Vec<RequestTrace> {
        self.recent
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// The `{"op":"trace_export"}` payload: every retained trace as
    /// Chrome trace-event JSON (load via `chrome://tracing` or Perfetto).
    /// Each request is one `tid` on a shared timeline; every span is a
    /// complete (`"ph":"X"`) event, and each root span carries the
    /// request metadata and final progress counters in `args`.
    pub fn chrome_trace_json(&self) -> Json {
        let mut events = Vec::new();
        for trace in self.recent() {
            for rec in &trace.records {
                let mut pairs = vec![
                    ("name", Json::str(rec.name)),
                    ("ph", Json::str("X")),
                    (
                        "ts",
                        Json::num((trace.start_ns + rec.start_ns) as f64 / 1e3),
                    ),
                    (
                        "dur",
                        Json::num(rec.end_ns.saturating_sub(rec.start_ns) as f64 / 1e3),
                    ),
                    ("pid", Json::num(1.0)),
                    ("tid", Json::num(trace.seq as f64)),
                ];
                if rec.parent == 0 {
                    let mut args = vec![
                        ("model", Json::str(trace.model.clone())),
                        ("kind", Json::str(trace.kind)),
                        ("outcome", Json::str(trace.outcome)),
                        ("spans_dropped", Json::num(trace.dropped as f64)),
                    ];
                    if let Some(id) = trace.wire_id {
                        args.push(("id", u64_to_json(id)));
                    }
                    for (name, value) in trace.progress.pairs() {
                        args.push((name, Json::num(value as f64)));
                    }
                    pairs.push(("args", Json::obj(args)));
                }
                events.push(Json::obj(pairs));
            }
        }
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
    }

    fn finish(&self, seq: u64, ok: bool) {
        let entry = self
            .active
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&seq);
        let Some(entry) = entry else { return };
        let Some(ctx) = entry.ctx else { return };
        let trace = RequestTrace {
            seq,
            model: entry.model,
            kind: entry.kind,
            wire_id: entry.wire_id,
            start_ns: u64::try_from(
                entry
                    .started
                    .saturating_duration_since(self.epoch)
                    .as_nanos(),
            )
            .unwrap_or(u64::MAX),
            elapsed_ns: u64::try_from(entry.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            outcome: if ok {
                "ok"
            } else if std::thread::panicking() {
                "panic"
            } else {
                "error"
            },
            records: ctx.records(),
            dropped: ctx.dropped(),
            progress: ctx.progress.snapshot(),
        };
        if self.echo.load(Ordering::Relaxed) {
            // One eprint of a pre-rendered block: the stderr lock is
            // taken once, so trees from concurrent connections never
            // interleave line-by-line.
            eprint!("{}", render_text_tree(&trace));
        }
        let mut recent = self.recent.lock().unwrap_or_else(PoisonError::into_inner);
        if recent.len() >= RECENT_TRACES {
            recent.pop_front();
        }
        recent.push_back(trace);
    }
}

impl std::fmt::Debug for TraceHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHub")
            .field("armed", &self.armed())
            .finish()
    }
}

/// Active-table registration guard; see [`TraceHub::begin`].
pub struct TraceGuard<'hub> {
    hub: &'hub TraceHub,
    seq: u64,
    ok: bool,
}

impl TraceGuard<'_> {
    /// Marks the request as successfully answered (the default outcome
    /// at drop is `"error"`, or `"panic"` while unwinding).
    pub fn set_ok(&mut self) {
        self.ok = true;
    }
}

impl Drop for TraceGuard<'_> {
    fn drop(&mut self) {
        self.hub.finish(self.seq, self.ok);
    }
}

/// The 6 progress counters as a JSON object.
pub fn progress_json(snap: &ProgressSnapshot) -> Json {
    Json::obj(
        snap.pairs()
            .into_iter()
            .map(|(name, value)| (name, Json::num(value as f64)))
            .collect::<Vec<_>>(),
    )
}

/// The `"trace"` object attached to a traced query's reply: the span
/// tree (flat records with `parent` links), drop count, and final
/// progress counters.
pub fn trace_reply_json(ctx: &TraceCtx) -> Json {
    Json::obj([
        (
            "spans",
            Json::Arr(ctx.records().iter().map(span_json).collect()),
        ),
        ("dropped", Json::num(ctx.dropped() as f64)),
        ("progress", progress_json(&ctx.progress.snapshot())),
    ])
}

fn span_json(rec: &SpanRecord) -> Json {
    Json::obj([
        ("id", Json::num(f64::from(rec.id))),
        ("parent", Json::num(f64::from(rec.parent))),
        ("name", Json::str(rec.name)),
        ("start_us", Json::num(rec.start_ns as f64 / 1e3)),
        (
            "dur_us",
            Json::num(rec.end_ns.saturating_sub(rec.start_ns) as f64 / 1e3),
        ),
    ])
}

/// One request's span tree as an indented text block (the `--trace`
/// stderr format). Children sort by start time; orphaned records
/// (parent overwritten out of the ring) surface at the root rather
/// than disappearing.
fn render_text_tree(trace: &RequestTrace) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "trace: request #{} model={:?} kind={} {} {:.3} ms",
        trace.seq,
        trace.model,
        trace.kind,
        trace.outcome,
        trace.elapsed_ns as f64 / 1e6
    );
    if trace.dropped > 0 {
        let _ = write!(out, " ({} spans dropped)", trace.dropped);
    }
    out.push('\n');
    let ids: std::collections::HashSet<u32> = trace.records.iter().map(|r| r.id).collect();
    let mut children: HashMap<u32, Vec<&SpanRecord>> = HashMap::new();
    for rec in &trace.records {
        let parent = if ids.contains(&rec.parent) {
            rec.parent
        } else {
            0
        };
        children.entry(parent).or_default().push(rec);
    }
    for list in children.values_mut() {
        list.sort_by_key(|r| (r.start_ns, r.id));
    }
    // Iterative DFS: (id, depth) — span trees are shallow, but a stack
    // keeps pathological inputs from recursing.
    let mut stack: Vec<(&SpanRecord, usize)> = children
        .get(&0)
        .map(|roots| roots.iter().rev().map(|r| (*r, 1)).collect())
        .unwrap_or_default();
    while let Some((rec, depth)) = stack.pop() {
        let _ = writeln!(
            out,
            "{:indent$}{} {:.3} ms",
            "",
            rec.name,
            rec.end_ns.saturating_sub(rec.start_ns) as f64 / 1e6,
            indent = 2 * depth
        );
        if let Some(kids) = children.get(&rec.id) {
            for kid in kids.iter().rev() {
                // A record is its own parent only if ids collide, which
                // unique allocation rules out; guard anyway.
                if kid.id != rec.id {
                    stack.push((kid, depth + 1));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced_request(hub: &TraceHub, model: &str, ok: bool) -> Arc<TraceCtx> {
        let ctx = TraceCtx::new(16);
        let mut guard = hub.begin(model, "estimate", Some(7), Some(Arc::clone(&ctx)));
        {
            let _root = ctx.span("serve.request");
            let _inner = ctx.span("engine.query");
        }
        if ok {
            guard.set_ok();
        }
        drop(guard);
        ctx
    }

    #[test]
    fn guard_moves_active_to_recent_with_outcome() {
        let hub = TraceHub::default();
        let ctx = TraceCtx::new(16);
        let guard = hub.begin("m", "lint", None, Some(ctx));
        let inflight = hub.inflight_json();
        let rows = match &inflight {
            Json::Arr(rows) => rows,
            other => panic!("inflight not an array: {other:?}"),
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("kind").and_then(Json::as_str), Some("lint"));
        assert!(rows[0].get("progress").is_some());
        drop(guard);
        let rows_after = match hub.inflight_json() {
            Json::Arr(rows) => rows,
            other => panic!("inflight not an array: {other:?}"),
        };
        assert!(rows_after.is_empty(), "guard drop must deregister");
        let recent = hub.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].outcome, "error", "no set_ok => error");
        traced_request(&hub, "m", true);
        assert_eq!(hub.recent()[1].outcome, "ok");
    }

    #[test]
    fn untraced_requests_appear_inflight_but_not_in_recent() {
        let hub = TraceHub::default();
        let mut guard = hub.begin("m", "sprt", None, None);
        let inflight = hub.inflight_json().render();
        assert!(inflight.contains("\"sprt\""));
        assert!(!inflight.contains("progress"), "no ctx, no counters");
        guard.set_ok();
        drop(guard);
        assert!(hub.recent().is_empty(), "only traced requests export");
    }

    #[test]
    fn recent_ring_is_bounded() {
        let hub = TraceHub::default();
        for i in 0..(RECENT_TRACES + 5) {
            traced_request(&hub, &format!("m{i}"), true);
        }
        let recent = hub.recent();
        assert_eq!(recent.len(), RECENT_TRACES);
        assert_eq!(recent[0].model, "m5", "oldest dropped first");
    }

    #[test]
    fn chrome_export_is_loadable_shape() {
        let hub = TraceHub::default();
        traced_request(&hub, "decay", true);
        let json = hub.chrome_trace_json();
        let events = match json.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => panic!("missing traceEvents: {other:?}"),
        };
        assert_eq!(events.len(), 2, "two spans, two complete events");
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
            for key in ["name", "ts", "dur", "pid", "tid"] {
                assert!(ev.get(key).is_some(), "event missing {key}");
            }
        }
        // Exactly the root (parent == 0) events carry args.
        let with_args: Vec<_> = events.iter().filter(|e| e.get("args").is_some()).collect();
        assert_eq!(with_args.len(), 1);
        let args = with_args[0].get("args").unwrap(); // lint: infallible
        assert_eq!(args.get("model").and_then(Json::as_str), Some("decay"));
        assert_eq!(args.get("outcome").and_then(Json::as_str), Some("ok"));
        assert!(args.get("samples").is_some(), "progress flattened in");
        // The export must survive a parse round-trip (what the CI smoke
        // validates end-to-end over the wire).
        let parsed = crate::json::parse_json(&json.render()).expect("export parses"); // lint: infallible
        assert!(parsed.get("traceEvents").is_some());
    }

    #[test]
    fn text_tree_indents_children_in_one_block() {
        let hub = TraceHub::default();
        let ctx = traced_request(&hub, "m", true);
        drop(ctx);
        let trace = &hub.recent()[0];
        let text = render_text_tree(trace);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("trace: request #"));
        assert!(lines[1].starts_with("  serve.request"));
        assert!(lines[2].starts_with("    engine.query"));
        assert!(text.ends_with('\n'), "block ends clean for atomic emit");
    }

    #[test]
    fn panicking_request_publishes_a_terminated_trace() {
        let hub = TraceHub::default();
        let ctx = TraceCtx::new(16);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = hub.begin("m", "estimate", None, Some(Arc::clone(&ctx)));
            let _root = ctx.span("serve.request");
            panic!("solver blew up");
        }));
        assert!(result.is_err());
        assert!(
            matches!(hub.inflight_json(), Json::Arr(rows) if rows.is_empty()),
            "unwind must deregister"
        );
        let recent = hub.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].outcome, "panic");
        assert_eq!(recent[0].records.len(), 1, "span terminated, not leaked");
        assert_eq!(recent[0].records[0].name, "serve.request");
    }
}
