//! Stability analysis (Sec. IV-C): equilibrium localization by interval
//! Newton plus CEGIS Lyapunov certification.
//!
//! Moved here from `biocheck_core` (which keeps a thin compatibility
//! wrapper). Prefer [`Query::Stability`](crate::Query::Stability) on a
//! [`Session`](crate::Session).

use crate::budget::Budget;
use biocheck_expr::Context;
use biocheck_icp::{Contractor, Newton, Outcome};
use biocheck_interval::{IBox, Interval};
use biocheck_lyapunov::{shift_to_origin, LyapunovSynthesizer};
use biocheck_ode::OdeSystem;
use std::time::Instant;

/// Result of a stability verification.
#[derive(Clone, Debug)]
pub struct StabilityReport {
    /// The localized equilibrium.
    pub equilibrium: Vec<f64>,
    /// Rendering of the certified Lyapunov function (shifted coordinates).
    pub lyapunov: String,
    /// CEGIS iterations.
    pub iterations: usize,
    /// `true` when a certificate was verified (exact side).
    pub certified: bool,
}

/// Locates an equilibrium inside `region` with the interval-Newton
/// contractor and certifies local asymptotic stability with a quadratic
/// Lyapunov function on the annulus `r_min ≤ ‖x − x*‖∞ ≤ r_max`.
///
/// Returns `None` when no equilibrium is localized or no quadratic
/// certificate is found.
pub fn verify_stability(
    cx: &Context,
    sys: &OdeSystem,
    region: &[Interval],
    r_min: f64,
    r_max: f64,
) -> Option<StabilityReport> {
    run_stability(cx, sys, region, r_min, r_max, &Budget::default(), None).0
}

/// The budget-aware implementation: cancellation and deadlines are
/// polled between Newton contraction rounds, between CEGIS phases, and
/// inside the CEGIS δ-searches (the synthesizer forwards the flag into
/// its branch-and-prune runs and never certifies from an interrupted
/// verification). Returns the report (if certified) and whether the
/// budget cut the analysis short.
pub(crate) fn run_stability(
    cx: &Context,
    sys: &OdeSystem,
    region: &[Interval],
    r_min: f64,
    r_max: f64,
    budget: &Budget,
    deadline: Option<Instant>,
) -> (Option<StabilityReport>, bool) {
    assert_eq!(region.len(), sys.dim(), "one interval per state");
    let mut cx = cx.clone();
    // Localize f(x) = 0 by Newton iteration on the region box.
    let newton = Newton::new(&mut cx, &sys.rhs, &sys.states);
    let mut bx = IBox::uniform(cx.num_vars(), Interval::ZERO);
    for (&s, &r) in sys.states.iter().zip(region) {
        bx[s.index()] = r;
    }
    for _ in 0..50 {
        if budget.interrupted(deadline) {
            return (None, true);
        }
        match newton.contract(&mut bx) {
            Outcome::Empty => return (None, false),
            Outcome::Unchanged => break,
            Outcome::Reduced => {}
        }
    }
    let eq: Vec<f64> = sys.states.iter().map(|s| bx[s.index()].mid()).collect();
    if eq.iter().any(|v| !v.is_finite()) {
        return (None, false);
    }
    if budget.interrupted(deadline) {
        return (None, true);
    }
    // Shift and certify.
    let shifted = shift_to_origin(&mut cx, sys, &eq);
    let mut syn = LyapunovSynthesizer::quadratic(cx, &shifted, r_min, r_max);
    syn.cancel = budget.cancel_flag();
    syn.deadline = deadline;
    syn.progress_boxes = budget
        .trace
        .as_ref()
        .map(|t| std::sync::Arc::clone(&t.progress.boxes));
    match syn.run(30) {
        Some(result) => (
            Some(StabilityReport {
                equilibrium: eq,
                lyapunov: result.v_text,
                iterations: result.iterations,
                certified: result.verified,
            }),
            false,
        ),
        // Distinguish "no certificate exists/found" from "the budget
        // stopped the search": a failed run with the interrupt raised is
        // exhaustion, not a negative answer.
        None => (None, budget.interrupted(deadline)),
    }
}
