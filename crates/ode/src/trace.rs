//! Dense solution traces with Hermite interpolation.

use std::fmt;

/// A numerically integrated trajectory: strictly increasing sample times,
/// states, and state derivatives (enabling C¹ cubic-Hermite interpolation
/// between samples).
#[derive(Clone, PartialEq)]
pub struct Trace {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    derivs: Vec<Vec<f64>>,
}

impl Trace {
    /// Builds a trace from parallel arrays.
    ///
    /// # Panics
    ///
    /// Panics when the arrays disagree in length, are empty, or times are
    /// not strictly increasing.
    pub fn new(times: Vec<f64>, states: Vec<Vec<f64>>, derivs: Vec<Vec<f64>>) -> Trace {
        assert!(!times.is_empty(), "a trace needs at least one sample");
        assert_eq!(times.len(), states.len(), "times/states length mismatch");
        assert_eq!(times.len(), derivs.len(), "times/derivs length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "times must be strictly increasing"
        );
        Trace {
            times,
            states,
            derivs,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` when the trace holds a single sample.
    pub fn is_empty(&self) -> bool {
        false // an invariant: traces are never sample-free
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.states[0].len()
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The i-th state sample.
    pub fn state(&self, i: usize) -> &[f64] {
        &self.states[i]
    }

    /// The i-th derivative sample.
    pub fn deriv(&self, i: usize) -> &[f64] {
        &self.derivs[i]
    }

    /// First time point.
    pub fn t_start(&self) -> f64 {
        self.times[0]
    }

    /// Last time point.
    pub fn t_end(&self) -> f64 {
        *self.times.last().unwrap()
    }

    /// The final state.
    pub fn last_state(&self) -> &[f64] {
        self.states.last().unwrap()
    }

    /// Iterates over `(t, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> {
        self.times
            .iter()
            .copied()
            .zip(self.states.iter().map(Vec::as_slice))
    }

    /// Cubic-Hermite interpolated state at time `t` (clamped to the span).
    pub fn value_at(&self, t: f64) -> Vec<f64> {
        let t = t.clamp(self.t_start(), self.t_end());
        // Find the bracketing segment by binary search.
        let k = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).unwrap())
        {
            Ok(i) => return self.states[i].clone(),
            Err(i) => i - 1, // t strictly between times[i-1] and times[i]
        };
        let (t0, t1) = (self.times[k], self.times[k + 1]);
        let h = t1 - t0;
        let s = (t - t0) / h;
        let (s2, s3) = (s * s, s * s * s);
        let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
        let h10 = s3 - 2.0 * s2 + s;
        let h01 = -2.0 * s3 + 3.0 * s2;
        let h11 = s3 - s2;
        (0..self.dim())
            .map(|d| {
                h00 * self.states[k][d]
                    + h10 * h * self.derivs[k][d]
                    + h01 * self.states[k + 1][d]
                    + h11 * h * self.derivs[k + 1][d]
            })
            .collect()
    }

    /// Resamples on a uniform grid with spacing `dt` (plus the endpoint).
    pub fn sample(&self, dt: f64) -> Vec<(f64, Vec<f64>)> {
        assert!(dt > 0.0, "sample spacing must be positive");
        let mut out = Vec::new();
        let mut t = self.t_start();
        while t < self.t_end() {
            out.push((t, self.value_at(t)));
            t += dt;
        }
        out.push((self.t_end(), self.last_state().to_vec()));
        out
    }

    /// The prefix of the trace up to `t_cut`, ending exactly at `t_cut`
    /// (interpolated). Used when an event truncates a simulation.
    pub fn truncated_at(&self, t_cut: f64) -> Trace {
        let t_cut = t_cut.clamp(self.t_start(), self.t_end());
        let mut times = Vec::new();
        let mut states = Vec::new();
        let mut derivs = Vec::new();
        for i in 0..self.len() {
            if self.times[i] < t_cut {
                times.push(self.times[i]);
                states.push(self.states[i].clone());
                derivs.push(self.derivs[i].clone());
            } else {
                break;
            }
        }
        let y = self.value_at(t_cut);
        // Reuse the nearest derivative for the synthetic endpoint; the
        // error is O(h) on a quantity only used for interpolation display.
        let d = self
            .derivs
            .get(times.len())
            .or_else(|| self.derivs.last())
            .unwrap()
            .clone();
        times.push(t_cut);
        states.push(y);
        derivs.push(d);
        Trace::new(times, states, derivs)
    }

    /// Maximum absolute value of component `d` over the samples.
    pub fn max_abs(&self, d: usize) -> f64 {
        self.states.iter().map(|s| s[d].abs()).fold(0.0, f64::max)
    }

    /// Componentwise extrema `(min, max)` of component `d` over samples.
    pub fn extrema(&self, d: usize) -> (f64, f64) {
        self.states
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
                (lo.min(s[d]), hi.max(s[d]))
            })
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trace({} samples, dim {}, t ∈ [{}, {}])",
            self.len(),
            self.dim(),
            self.t_start(),
            self.t_end()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quadratic x(t) = t² sampled exactly: Hermite must reproduce it.
    fn quad_trace() -> Trace {
        let times: Vec<f64> = (0..=10).map(|i| i as f64 * 0.3).collect();
        let states = times.iter().map(|&t| vec![t * t]).collect();
        let derivs = times.iter().map(|&t| vec![2.0 * t]).collect();
        Trace::new(times, states, derivs)
    }

    #[test]
    fn hermite_is_exact_on_cubics() {
        let tr = quad_trace();
        for k in 0..=30 {
            let t = 3.0 * k as f64 / 30.0;
            let v = tr.value_at(t)[0];
            assert!((v - t * t).abs() < 1e-12, "t={t}: {v}");
        }
    }

    #[test]
    fn value_at_clamps() {
        let tr = quad_trace();
        assert_eq!(tr.value_at(-5.0)[0], 0.0);
        let end = tr.t_end();
        assert!((tr.value_at(100.0)[0] - end * end).abs() < 1e-12);
    }

    #[test]
    fn exact_sample_hit() {
        let tr = quad_trace();
        let v = tr.value_at(0.3)[0];
        assert!((v - 0.09).abs() < 1e-15);
    }

    #[test]
    fn sample_grid_covers_span() {
        let tr = quad_trace();
        let pts = tr.sample(0.25);
        assert!((pts[0].0 - tr.t_start()).abs() < 1e-12);
        assert!((pts.last().unwrap().0 - tr.t_end()).abs() < 1e-12);
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn truncation() {
        let tr = quad_trace();
        let cut = tr.truncated_at(1.0);
        assert!((cut.t_end() - 1.0).abs() < 1e-12);
        assert!((cut.last_state()[0] - 1.0).abs() < 1e-9);
        assert!(cut.len() <= tr.len() + 1);
    }

    #[test]
    fn extrema_and_max_abs() {
        let tr = Trace::new(
            vec![0.0, 1.0, 2.0],
            vec![vec![1.0], vec![-3.0], vec![2.0]],
            vec![vec![0.0]; 3],
        );
        assert_eq!(tr.max_abs(0), 3.0);
        assert_eq!(tr.extrema(0), (-3.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_times_rejected() {
        let _ = Trace::new(
            vec![0.0, 0.0],
            vec![vec![1.0], vec![1.0]],
            vec![vec![0.0], vec![0.0]],
        );
    }

    #[test]
    fn debug_format() {
        let s = format!("{:?}", quad_trace());
        assert!(s.contains("samples"));
    }
}
