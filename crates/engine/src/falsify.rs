//! Model falsification: reject a model hypothesis by proving a desired
//! behavior unreachable for *every* admissible parameter value.
//!
//! Moved here from `biocheck_core` (which keeps a thin compatibility
//! wrapper). Prefer [`Query::Falsify`](crate::Query::Falsify) on a
//! [`Session`](crate::Session), which threads budgets and cancellation
//! into the reachability search.

use biocheck_bmc::{check_reach, ReachOptions, ReachResult, ReachSpec, ReachWitness};
use biocheck_hybrid::HybridAutomaton;

/// Outcome of a falsification attempt.
#[derive(Clone, Debug)]
pub enum FalsificationOutcome {
    /// `unsat` (exact): the model cannot exhibit the behavior no matter
    /// which parameter values are used — the hypothesis is rejected.
    Falsified,
    /// A δ-sat witness exhibits the behavior; the model stands.
    Consistent(Box<ReachWitness>),
    /// Budget exhausted.
    Undecided,
}

impl FalsificationOutcome {
    /// Returns `true` when the model was falsified.
    pub fn is_falsified(&self) -> bool {
        matches!(self, FalsificationOutcome::Falsified)
    }
}

/// Checks whether the automaton can reach the behavior described by
/// `spec` for any parameter valuation. `unsat` rejects the model — the
/// argument used against Fenton–Karma's ability to produce the
/// epicardial spike-and-dome morphology (Sec. IV-A).
pub fn falsify_reachability(
    ha: &HybridAutomaton,
    spec: &ReachSpec,
    opts: &ReachOptions,
) -> FalsificationOutcome {
    match check_reach(ha, spec, opts) {
        ReachResult::Unsat => FalsificationOutcome::Falsified,
        ReachResult::DeltaSat(w) => FalsificationOutcome::Consistent(Box::new(w)),
        ReachResult::Unknown => FalsificationOutcome::Undecided,
    }
}
