//! MathML (content markup) subset: `<apply>` trees ↔ expression nodes.

use crate::model::SbmlError;
use crate::xml::XmlNode;
use biocheck_expr::{BinOp, Context, Node, NodeId, UnaryOp};

/// Converts a `<math>` (or `<apply>`/`<ci>`/`<cn>`) node to an expression.
/// `rename` maps raw identifiers to context variable names (used to
/// namespace reaction-local parameters).
pub fn mathml_to_expr(
    cx: &mut Context,
    node: &XmlNode,
    rename: &dyn Fn(&str) -> String,
) -> Result<NodeId, SbmlError> {
    match node.local_name() {
        Some("math") => {
            let inner = node
                .elements()
                .next()
                .ok_or_else(|| SbmlError::new("empty <math> element"))?;
            mathml_to_expr(cx, inner, rename)
        }
        Some("ci") => {
            let name = node.text().trim().to_string();
            if name.is_empty() {
                return Err(SbmlError::new("empty <ci>"));
            }
            Ok(cx.var(&rename(&name)))
        }
        Some("cn") => {
            let text = node.text().trim().to_string();
            // sbml allows type="e-notation" with <sep/>; we accept the
            // concatenated mantissa/exponent digits with 'e'.
            let v: f64 = text
                .parse()
                .map_err(|_| SbmlError::new(format!("bad <cn> value `{text}`")))?;
            Ok(cx.constant(v))
        }
        Some("apply") => {
            let mut parts = node.elements();
            let op = parts
                .next()
                .ok_or_else(|| SbmlError::new("empty <apply>"))?;
            let args: Vec<NodeId> = parts
                .map(|a| mathml_to_expr(cx, a, rename))
                .collect::<Result<_, _>>()?;
            apply_op(cx, op.local_name().unwrap_or(""), &args)
        }
        Some(other) => Err(SbmlError::new(format!(
            "unsupported MathML element <{other}>"
        ))),
        None => Err(SbmlError::new("unexpected text in MathML")),
    }
}

fn apply_op(cx: &mut Context, op: &str, args: &[NodeId]) -> Result<NodeId, SbmlError> {
    let need = |n: usize| -> Result<(), SbmlError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(SbmlError::new(format!(
                "<{op}> expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match op {
        "plus" => Ok(args
            .iter()
            .copied()
            .reduce(|a, b| cx.add(a, b))
            .unwrap_or_else(|| cx.constant(0.0))),
        "times" => Ok(args
            .iter()
            .copied()
            .reduce(|a, b| cx.mul(a, b))
            .unwrap_or_else(|| cx.constant(1.0))),
        "minus" => match args.len() {
            1 => Ok(cx.neg(args[0])),
            2 => Ok(cx.sub(args[0], args[1])),
            n => Err(SbmlError::new(format!("<minus> expects 1–2 args, got {n}"))),
        },
        "divide" => {
            need(2)?;
            Ok(cx.div(args[0], args[1]))
        }
        "power" => {
            need(2)?;
            Ok(cx.pow(args[0], args[1]))
        }
        "root" => {
            need(1)?;
            Ok(cx.sqrt(args[0]))
        }
        "exp" => {
            need(1)?;
            Ok(cx.exp(args[0]))
        }
        "ln" | "log" => {
            need(1)?;
            Ok(cx.ln(args[0]))
        }
        "sin" => {
            need(1)?;
            Ok(cx.sin(args[0]))
        }
        "cos" => {
            need(1)?;
            Ok(cx.cos(args[0]))
        }
        "tan" => {
            need(1)?;
            Ok(cx.tan(args[0]))
        }
        "tanh" => {
            need(1)?;
            Ok(cx.tanh(args[0]))
        }
        "abs" => {
            need(1)?;
            Ok(cx.abs(args[0]))
        }
        other => Err(SbmlError::new(format!("unsupported MathML op <{other}>"))),
    }
}

/// Serializes an expression back to content MathML.
pub fn expr_to_mathml(cx: &Context, id: NodeId) -> String {
    let mut s = String::new();
    write_node(cx, id, &mut s);
    s
}

fn write_node(cx: &Context, id: NodeId, out: &mut String) {
    match *cx.node(id) {
        Node::Const(v) => {
            out.push_str(&format!("<cn>{v}</cn>"));
        }
        Node::Var(v) => {
            out.push_str(&format!("<ci>{}</ci>", cx.var_name(v)));
        }
        Node::Unary(op, a) => {
            let tag = match op {
                UnaryOp::Neg => "minus",
                UnaryOp::Abs => "abs",
                UnaryOp::Sqrt => "root",
                UnaryOp::Exp => "exp",
                UnaryOp::Ln => "ln",
                UnaryOp::Sin => "sin",
                UnaryOp::Cos => "cos",
                UnaryOp::Tan => "tan",
                UnaryOp::Asin => "arcsin",
                UnaryOp::Acos => "arccos",
                UnaryOp::Atan => "arctan",
                UnaryOp::Sinh => "sinh",
                UnaryOp::Cosh => "cosh",
                UnaryOp::Tanh => "tanh",
            };
            out.push_str(&format!("<apply><{tag}/>"));
            write_node(cx, a, out);
            out.push_str("</apply>");
        }
        Node::Binary(op, a, b) => {
            let tag = match op {
                BinOp::Add => "plus",
                BinOp::Sub => "minus",
                BinOp::Mul => "times",
                BinOp::Div => "divide",
                BinOp::Pow => "power",
                BinOp::Min | BinOp::Max => {
                    // No content-MathML primitive; encode via piecewise is
                    // overkill — reject loudly at write time.
                    panic!("min/max cannot be serialized to the MathML subset");
                }
            };
            out.push_str(&format!("<apply><{tag}/>"));
            write_node(cx, a, out);
            write_node(cx, b, out);
            out.push_str("</apply>");
        }
        Node::PowI(a, k) => {
            out.push_str("<apply><power/>");
            write_node(cx, a, out);
            out.push_str(&format!("<cn>{k}</cn>"));
            out.push_str("</apply>");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::parse_xml;

    fn parse_math(src: &str) -> (Context, NodeId) {
        let mut cx = Context::new();
        let node = parse_xml(src).unwrap();
        let id = mathml_to_expr(&mut cx, &node, &|s| s.to_string()).unwrap();
        (cx, id)
    }

    #[test]
    fn michaelis_menten_rate() {
        let (cx, id) = parse_math(
            "<math><apply><divide/>\
             <apply><times/><ci>Vmax</ci><ci>S</ci></apply>\
             <apply><plus/><ci>Km</ci><ci>S</ci></apply>\
             </apply></math>",
        );
        // Vmax=2, S=1, Km=0.5 → 2/1.5
        let vmax = cx.var_id("Vmax").unwrap().index();
        let s = cx.var_id("S").unwrap().index();
        let km = cx.var_id("Km").unwrap().index();
        let mut env = vec![0.0; 3];
        env[vmax] = 2.0;
        env[s] = 1.0;
        env[km] = 0.5;
        assert!((cx.eval(id, &env) - 2.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn unary_minus_and_power() {
        let (cx, id) = parse_math(
            "<math><apply><minus/><apply><power/><ci>x</ci><cn>2</cn></apply></apply></math>",
        );
        assert_eq!(cx.eval(id, &[3.0]), -9.0);
    }

    #[test]
    fn functions() {
        let (cx, id) =
            parse_math("<math><apply><exp/><apply><ln/><cn>5</cn></apply></apply></math>");
        assert!((cx.eval(id, &[]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rename_hook() {
        let mut cx = Context::new();
        let node = parse_xml("<math><ci>k</ci></math>").unwrap();
        let id = mathml_to_expr(&mut cx, &node, &|s| format!("r1.{s}")).unwrap();
        assert!(cx.var_id("r1.k").is_some());
        let _ = id;
    }

    #[test]
    fn roundtrip_through_writer() {
        let (cx, id) = parse_math(
            "<math><apply><plus/><apply><times/><ci>a</ci><ci>b</ci></apply><cn>2</cn></apply></math>",
        );
        let xml = format!("<math>{}</math>", expr_to_mathml(&cx, id));
        let mut cx2 = Context::new();
        let node = parse_xml(&xml).unwrap();
        let id2 = mathml_to_expr(&mut cx2, &node, &|s| s.to_string()).unwrap();
        // a=2, b=3 → 8 under both.
        assert_eq!(cx.eval(id, &[2.0, 3.0]), 8.0);
        assert_eq!(cx2.eval(id2, &[2.0, 3.0]), 8.0);
    }

    #[test]
    fn errors() {
        let mut cx = Context::new();
        for bad in [
            "<math></math>",
            "<math><apply></apply></math>",
            "<math><apply><frobnicate/><cn>1</cn></apply></math>",
            "<math><cn>xyz</cn></math>",
            "<math><apply><divide/><cn>1</cn></apply></math>",
        ] {
            let node = parse_xml(bad).unwrap();
            assert!(
                mathml_to_expr(&mut cx, &node, &|s| s.to_string()).is_err(),
                "{bad} should fail"
            );
        }
    }
}
