//! Sec. IV-C: Lyapunov stability analysis of biochemical networks via
//! CEGIS over ∃∀ δ-decision problems, through the engine's
//! `Query::Stability`.
//!
//! Run with `cargo run --release --example lyapunov_stability`.

use biocheck::engine::{Query, Session, Value};
use biocheck::interval::Interval;
use biocheck::lyapunov::LyapunovSynthesizer;
use biocheck::models::classics;

fn main() {
    // 1. Kinetic proofreading chain (McKeithan): linear, globally stable.
    let kp = classics::kinetic_proofreading(2, 1.0, 0.5, 1.0);
    let session = Session::new(&kp);
    let report = session
        .query(Query::Stability {
            region: vec![Interval::new(0.0, 2.0), Interval::new(0.0, 2.0)],
            r_min: 0.1,
            r_max: 0.8,
        })
        .run()
        .expect("well-formed query");
    let Value::Stability(Some(stability)) = &report.value else {
        panic!("proofreading chain is stable, got {:?}", report.value);
    };
    println!("kinetic proofreading:");
    println!("  equilibrium ≈ {:?}", stability.equilibrium);
    println!(
        "  V(y) = {}  (certified: {})",
        stability.lyapunov, stability.certified
    );

    // 2. A damped oscillator x'' = -x - x' — needs a cross term, which
    //    the CEGIS loop discovers (equilibrium localized by interval
    //    Newton first).
    let mut cx = biocheck::expr::Context::new();
    let x = cx.intern_var("x");
    let v = cx.intern_var("v");
    let fx = cx.parse("v").unwrap();
    let fv = cx.parse("-x - v").unwrap();
    let sys = biocheck::ode::OdeSystem::new(vec![x, v], vec![fx, fv]);
    let session = Session::from_parts(cx, sys);
    let report = session
        .query(Query::Stability {
            region: vec![Interval::new(-0.5, 0.5), Interval::new(-0.5, 0.5)],
            r_min: 0.2,
            r_max: 1.0,
        })
        .run()
        .expect("well-formed query");
    let Value::Stability(Some(stability)) = &report.value else {
        panic!("damped oscillator is stable, got {:?}", report.value);
    };
    println!("damped oscillator:");
    println!(
        "  equilibrium ≈ {:?}, V(y) = {}  (certified: {}, {} CEGIS iterations)",
        stability.equilibrium, stability.lyapunov, stability.certified, stability.iterations
    );

    // 3. A raw CEGIS run on a nonlinear clearance x' = -x - x³, showing
    //    the substrate the engine query wraps.
    let mut cx = biocheck::expr::Context::new();
    let x = cx.intern_var("x");
    let rhs = cx.parse("-x - x^3").unwrap();
    let sys = biocheck::ode::OdeSystem::new(vec![x], vec![rhs]);
    let mut syn = LyapunovSynthesizer::quadratic(cx, &sys, 0.1, 0.8);
    let r = syn.run(30).expect("certificate exists");
    println!(
        "cubic clearance: V = {} after {} CEGIS iterations",
        r.v_text, r.iterations
    );
}
