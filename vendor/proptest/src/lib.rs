//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the proptest API its property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! range and [`Just`] strategies, tuple composition, [`prop_oneof!`],
//! and [`collection::vec`].
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test seed (derived from the test name), and failing cases are
//! **not shrunk** — the panic message carries the failed assertion
//! instead of a minimal counterexample.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::rc::Rc;

/// Test-runner configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Error type produced by `prop_assert!` failures.
pub type TestCaseError = String;

/// A value generator. Unlike upstream proptest there is no shrinking:
/// a strategy is simply a cloneable sampler.
pub trait Strategy: Clone {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: 'static,
        Self::Value: 'static,
        F: Fn(Self::Value) -> U + 'static,
        U: 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| f(inner.generate(rng))))
    }

    /// Builds recursive values: `recurse` receives a strategy for smaller
    /// values and returns a strategy for one-level-larger values. Sampled
    /// depth varies from 0 to `depth`.
    fn prop_recursive<F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            // Mix the previous level in so shallower values stay reachable.
            let bigger = recurse(level.clone());
            level = BoxedStrategy::union(vec![level, bigger]);
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut StdRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> BoxedStrategy<V> {
    /// Uniform choice among the given strategies.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn union(arms: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V>
    where
        V: 'static,
    {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy(Rc::new(move |rng| {
            let i = rng.gen_range(0..arms.len());
            (arms[i].0)(rng)
        }))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

/// Collection strategies.
pub mod collection {
    use super::{BoxedStrategy, Strategy};
    use rand::Rng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A `Vec` with length drawn from `len` and elements from `element`.
    pub fn vec<S>(element: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| {
            let n = rng.gen_range(len.clone());
            (0..n).map(|_| element.generate(rng)).collect()
        }))
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Builds the deterministic runner RNG (used by the `proptest!` macro,
/// which cannot name `rand` paths from the caller's crate).
pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::BoxedStrategy::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a property, reporting the failing case without panicking
/// past the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let __prop_ok: bool = $cond;
        if !__prop_ok {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let __prop_ok: bool = $cond;
        if !__prop_ok {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({va:?} vs {vb:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({va:?} vs {vb:?}): {}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+)
            ));
        }
    }};
}

/// Discards a case when its precondition fails (counted as a skip here).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The property-test declaration macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:tt; $(
        $(#[$attr:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::new_rng(
                $crate::seed_of(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf,
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_sample_in_bounds(x in -2.0..3.0f64, n in 1..5i32) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn oneof_hits_every_arm(v in prop_oneof![Just(1u32), Just(2u32), Just(3u32)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y)| (x.min(y), x.max(y)))) {
            prop_assert!(a <= b, "{a} > {b}");
        }

        #[test]
        fn vec_len_in_range(v in collection::vec(0..10usize, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn recursive_depth_bounded(
            t in Just(Tree::Leaf).boxed().prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(a.into(), b.into()))
            })
        ) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn early_ok_return_works(flag in prop_oneof![Just(true), Just(false)]) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_of("a"), crate::seed_of("b"));
    }
}
